//! Versioned checkpoint/restore of a running [`Cluster`].
//!
//! A checkpoint is a single `mempool-checkpoint/v1` JSON document (same
//! plumbing as `crashdump.json`) capturing *everything* that influences
//! simulated behavior: per-core architectural and scoreboard state, the
//! program, all SPM/spare/external memory, in-flight bank requests and
//! response queues, the off-chip port, the fault controller (link health,
//! undelivered timed events, latent ECC masks, the accumulated report),
//! the watchdog, and the time-series sampler's epoch cursors.
//!
//! The contract is strict **bit-exactness**: [`Cluster::restore`] followed
//! by [`Cluster::run`] produces a [`crate::ClusterStats::digest`] equal to
//! the unbroken run's, at any `threads` count — the phased-tick engine is
//! bit-identical across host-thread counts and a checkpoint carries no
//! host-side state.
//!
//! Deliberately **excluded** (and why it is sound to do so):
//!
//! * engine scratch buffers and the per-tick link snapshot — drained empty
//!   / rebuilt at every tick boundary, so they are always empty between
//!   `step()` calls;
//! * observability attachments (metrics, spans, time-series contents,
//!   flight ring, instruction trace) — measurement, not simulated state;
//!   callers re-attach and re-arm them after restoring (the sampler's
//!   epoch cursors *are* saved so re-armed series stay aligned);
//! * the topology helper — a pure function of the configuration.
//!
//! [`Checkpointer`] adds the operational side: periodic atomic
//! (temp+rename) snapshot files with bounded retention, and
//! [`run_with_checkpoints`] drives a run in checkpoint-sized slices.
//! Loading goes through the quarantine-aware
//! [`mempool_obs::load_json_file`], so a truncated or corrupted snapshot
//! is renamed `.corrupt` and reported as an error — never a panic.

use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use mempool_arch::{BankId, BankLocation, ClusterConfig, LatencyModel, TileId};
use mempool_fault::{
    DeadLinkPolicy, EccState, FaultController, FaultReport, LinkState, TimedFault, Watchdog,
};
use mempool_isa::exec::{MemAccessKind, MemWidth};
use mempool_isa::instr::AmoOp;
use mempool_isa::{Program, Reg};
use mempool_obs::{load_json_file, Json, LoadOutcome};

use crate::cluster::{Bank, Cluster, PendingAccess, Response, Sampler, SimError};
use crate::params::{default_threads, SimParams, ENGINE_VERSION};
use crate::stats::{BankStats, CoreStats};

/// Schema tag of the checkpoint document.
pub const CHECKPOINT_SCHEMA: &str = "mempool-checkpoint/v1";

/// Error raised by checkpoint save/restore.
#[derive(Debug)]
pub enum CheckpointError {
    /// The simulator failed while running between checkpoints.
    Sim(SimError),
    /// A filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: String,
        /// The underlying failure.
        message: String,
    },
    /// The document is not a well-formed checkpoint (missing fields, bad
    /// types, geometry that does not reconstruct) — includes checkpoints
    /// quarantined by the corrupt-file policy.
    Malformed(String),
    /// The checkpoint is well-formed but belongs to a different world:
    /// another engine version or parameter set.
    Mismatch {
        /// Which field disagreed.
        field: &'static str,
        /// What this build expects.
        expected: String,
        /// What the document carries.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Sim(e) => write!(f, "simulation error: {e}"),
            CheckpointError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint mismatch on {field}: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SimError> for CheckpointError {
    fn from(e: SimError) -> Self {
        CheckpointError::Sim(e)
    }
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Malformed(msg.into())
}

fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, CheckpointError> {
    doc.get(key).ok_or_else(|| bad(format!("missing '{key}'")))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, CheckpointError> {
    get(doc, key)?
        .as_int()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| bad(format!("'{key}' is not a non-negative integer")))
}

fn get_u32(doc: &Json, key: &str) -> Result<u32, CheckpointError> {
    u32::try_from(get_u64(doc, key)?).map_err(|_| bad(format!("'{key}' exceeds u32")))
}

fn get_bool(doc: &Json, key: &str) -> Result<bool, CheckpointError> {
    match get(doc, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(bad(format!("'{key}' is not a boolean"))),
    }
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, CheckpointError> {
    get(doc, key)?
        .as_str()
        .ok_or_else(|| bad(format!("'{key}' is not a string")))
}

fn get_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], CheckpointError> {
    get(doc, key)?
        .as_arr()
        .ok_or_else(|| bad(format!("'{key}' is not an array")))
}

fn int_u64(value: &Json, what: &str) -> Result<u64, CheckpointError> {
    value
        .as_int()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| bad(format!("{what} is not a non-negative integer")))
}

fn int_u32(value: &Json, what: &str) -> Result<u32, CheckpointError> {
    u32::try_from(int_u64(value, what)?).map_err(|_| bad(format!("{what} exceeds u32")))
}

fn u64_arr(doc: &Json, key: &str) -> Result<Vec<u64>, CheckpointError> {
    get_arr(doc, key)?.iter().map(|v| int_u64(v, key)).collect()
}

fn json_u64s(values: impl IntoIterator<Item = u64>) -> Json {
    Json::Arr(values.into_iter().map(|v| Json::Int(v as i64)).collect())
}

/// Packs words as fixed-width hex (8 chars per word) — ~4x denser than a
/// JSON integer array for the SPM image, and trivially deterministic.
fn words_to_hex(words: &[u32]) -> String {
    use fmt::Write;
    let mut out = String::with_capacity(words.len() * 8);
    for &word in words {
        let _ = write!(out, "{word:08x}");
    }
    out
}

fn hex_to_words(text: &str, what: &str) -> Result<Vec<u32>, CheckpointError> {
    if !text.len().is_multiple_of(8) || !text.is_ascii() {
        return Err(bad(format!("{what} is not a packed hex word string")));
    }
    text.as_bytes()
        .chunks(8)
        .map(|chunk| {
            let s = std::str::from_utf8(chunk).map_err(|_| bad(format!("{what}: bad utf8")))?;
            u32::from_str_radix(s, 16).map_err(|_| bad(format!("{what}: bad hex word '{s}'")))
        })
        .collect()
}

fn reg_to_json(reg: Option<Reg>) -> Json {
    match reg {
        Some(reg) => Json::Int(i64::from(reg.number())),
        None => Json::Null,
    }
}

fn reg_from_json(value: &Json, what: &str) -> Result<Option<Reg>, CheckpointError> {
    match value {
        Json::Null => Ok(None),
        Json::Int(n) => u8::try_from(*n)
            .ok()
            .filter(|&n| n < 32)
            .map(|n| Some(Reg::new(n)))
            .ok_or_else(|| bad(format!("{what}: register number out of range"))),
        _ => Err(bad(format!("{what}: register is neither null nor int"))),
    }
}

fn width_to_json(width: MemWidth) -> Json {
    Json::Int(i64::from(width.bytes()))
}

fn width_from_json(value: &Json, what: &str) -> Result<MemWidth, CheckpointError> {
    match value.as_int() {
        Some(1) => Ok(MemWidth::Byte),
        Some(2) => Ok(MemWidth::Half),
        Some(4) => Ok(MemWidth::Word),
        _ => Err(bad(format!("{what}: invalid access width"))),
    }
}

fn amo_tag(op: AmoOp) -> &'static str {
    match op {
        AmoOp::Add => "add",
        AmoOp::Swap => "swap",
        AmoOp::And => "and",
        AmoOp::Or => "or",
        AmoOp::Xor => "xor",
        AmoOp::Max => "max",
        AmoOp::Min => "min",
    }
}

fn amo_from_tag(tag: &str) -> Result<AmoOp, CheckpointError> {
    Ok(match tag {
        "add" => AmoOp::Add,
        "swap" => AmoOp::Swap,
        "and" => AmoOp::And,
        "or" => AmoOp::Or,
        "xor" => AmoOp::Xor,
        "max" => AmoOp::Max,
        "min" => AmoOp::Min,
        other => return Err(bad(format!("unknown amo op '{other}'"))),
    })
}

fn kind_to_json(kind: MemAccessKind) -> Json {
    match kind {
        MemAccessKind::Load { width, signed, rd } => Json::obj([
            ("op", Json::str("load")),
            ("width", width_to_json(width)),
            ("signed", Json::Bool(signed)),
            ("rd", reg_to_json(Some(rd))),
        ]),
        MemAccessKind::Store { width, value } => Json::obj([
            ("op", Json::str("store")),
            ("width", width_to_json(width)),
            ("value", Json::Int(i64::from(value))),
        ]),
        MemAccessKind::Amo { op, value, rd } => Json::obj([
            ("op", Json::str("amo")),
            ("amo", Json::str(amo_tag(op))),
            ("value", Json::Int(i64::from(value))),
            ("rd", reg_to_json(Some(rd))),
        ]),
    }
}

fn kind_from_json(doc: &Json) -> Result<MemAccessKind, CheckpointError> {
    match get_str(doc, "op")? {
        "load" => Ok(MemAccessKind::Load {
            width: width_from_json(get(doc, "width")?, "load width")?,
            signed: get_bool(doc, "signed")?,
            rd: reg_from_json(get(doc, "rd")?, "load rd")?.ok_or_else(|| bad("load without rd"))?,
        }),
        "store" => Ok(MemAccessKind::Store {
            width: width_from_json(get(doc, "width")?, "store width")?,
            value: get_u32(doc, "value")?,
        }),
        "amo" => Ok(MemAccessKind::Amo {
            op: amo_from_tag(get_str(doc, "amo")?)?,
            value: get_u32(doc, "value")?,
            rd: reg_from_json(get(doc, "rd")?, "amo rd")?.ok_or_else(|| bad("amo without rd"))?,
        }),
        other => Err(bad(format!("unknown access op '{other}'"))),
    }
}

fn loc_to_json(loc: BankLocation) -> Json {
    Json::obj([
        ("tile", Json::Int(i64::from(loc.tile.0))),
        ("bank", Json::Int(i64::from(loc.bank.0))),
        ("word", Json::Int(i64::from(loc.word))),
    ])
}

fn loc_from_json(doc: &Json) -> Result<BankLocation, CheckpointError> {
    Ok(BankLocation {
        tile: TileId(get_u32(doc, "tile")?),
        bank: BankId(get_u32(doc, "bank")?),
        word: get_u32(doc, "word")?,
    })
}

fn core_stats_to_json(stats: &CoreStats) -> Json {
    Json::obj([
        ("retired", Json::Int(stats.retired as i64)),
        ("stall_scoreboard", Json::Int(stats.stall_scoreboard as i64)),
        ("stall_structural", Json::Int(stats.stall_structural as i64)),
        ("stall_icache", Json::Int(stats.stall_icache as i64)),
        ("icache_misses", Json::Int(stats.icache_misses as i64)),
        ("stall_branch", Json::Int(stats.stall_branch as i64)),
        (
            "stall_fault_retry",
            Json::Int(stats.stall_fault_retry as i64),
        ),
        ("stall_ecc", Json::Int(stats.stall_ecc as i64)),
        ("halted_cycles", Json::Int(stats.halted_cycles as i64)),
        ("accesses", json_u64s(stats.accesses)),
        ("network_accesses", json_u64s(stats.network_accesses)),
    ])
}

fn core_stats_from_json(doc: &Json) -> Result<CoreStats, CheckpointError> {
    let accesses = u64_arr(doc, "accesses")?;
    let network = u64_arr(doc, "network_accesses")?;
    Ok(CoreStats {
        retired: get_u64(doc, "retired")?,
        stall_scoreboard: get_u64(doc, "stall_scoreboard")?,
        stall_structural: get_u64(doc, "stall_structural")?,
        stall_icache: get_u64(doc, "stall_icache")?,
        icache_misses: get_u64(doc, "icache_misses")?,
        stall_branch: get_u64(doc, "stall_branch")?,
        stall_fault_retry: get_u64(doc, "stall_fault_retry")?,
        stall_ecc: get_u64(doc, "stall_ecc")?,
        halted_cycles: get_u64(doc, "halted_cycles")?,
        accesses: accesses
            .try_into()
            .map_err(|_| bad("'accesses' must have 3 entries"))?,
        network_accesses: network
            .try_into()
            .map_err(|_| bad("'network_accesses' must have 4 entries"))?,
    })
}

fn link_to_json(link: LinkState) -> Json {
    match link {
        LinkState::Healthy => Json::obj([("state", Json::str("healthy"))]),
        LinkState::Degraded(extra) => Json::obj([
            ("state", Json::str("degraded")),
            ("extra", Json::Int(i64::from(extra))),
        ]),
        LinkState::Dead => Json::obj([("state", Json::str("dead"))]),
    }
}

fn link_from_json(doc: &Json) -> Result<LinkState, CheckpointError> {
    match get_str(doc, "state")? {
        "healthy" => Ok(LinkState::Healthy),
        "degraded" => Ok(LinkState::Degraded(get_u32(doc, "extra")?)),
        "dead" => Ok(LinkState::Dead),
        other => Err(bad(format!("unknown link state '{other}'"))),
    }
}

fn timed_to_json(cycle: u64, fault: TimedFault) -> Json {
    let fault = match fault {
        TimedFault::Flip { loc, mask } => Json::obj([
            ("kind", Json::str("flip")),
            ("loc", loc_to_json(loc)),
            ("mask", Json::Int(i64::from(mask))),
        ]),
        TimedFault::Hang { core } => Json::obj([
            ("kind", Json::str("hang")),
            ("core", Json::Int(i64::from(core))),
        ]),
    };
    Json::obj([("cycle", Json::Int(cycle as i64)), ("fault", fault)])
}

fn timed_from_json(doc: &Json) -> Result<(u64, TimedFault), CheckpointError> {
    let cycle = get_u64(doc, "cycle")?;
    let fault = get(doc, "fault")?;
    let fault = match get_str(fault, "kind")? {
        "flip" => TimedFault::Flip {
            loc: loc_from_json(get(fault, "loc")?)?,
            mask: get_u32(fault, "mask")?,
        },
        "hang" => TimedFault::Hang {
            core: get_u32(fault, "core")?,
        },
        other => return Err(bad(format!("unknown timed fault '{other}'"))),
    };
    Ok((cycle, fault))
}

fn policy_tag(policy: DeadLinkPolicy) -> &'static str {
    match policy {
        DeadLinkPolicy::Error => "error",
        DeadLinkPolicy::BlackHole => "black_hole",
    }
}

fn policy_from_tag(tag: &str) -> Result<DeadLinkPolicy, CheckpointError> {
    match tag {
        "error" => Ok(DeadLinkPolicy::Error),
        "black_hole" => Ok(DeadLinkPolicy::BlackHole),
        other => Err(bad(format!("unknown dead-link policy '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Cluster::checkpoint / Cluster::restore
// ---------------------------------------------------------------------------

impl Cluster {
    /// Serializes the full simulated state as a `mempool-checkpoint/v1`
    /// document. See the [module docs](self) for what is (and is
    /// deliberately not) captured.
    pub fn checkpoint(&self) -> Json {
        let params = &self.params;
        let cores = self
            .cores
            .iter()
            .map(|core| {
                let (halted, hung, busy, outstanding, bubble) = core.timing_snapshot();
                Json::obj([
                    ("regs", json_u64s(core.regs.snapshot().map(u64::from))),
                    ("pc", Json::Int(i64::from(core.pc))),
                    ("halted", Json::Bool(halted)),
                    ("hung", Json::Bool(hung)),
                    ("busy", Json::Int(i64::from(busy))),
                    ("outstanding", Json::Int(i64::from(outstanding))),
                    ("bubble", Json::Int(i64::from(bubble))),
                    ("stats", core_stats_to_json(&core.stats)),
                ])
            })
            .collect();
        let icaches = self
            .icaches
            .iter()
            .map(|icache| {
                let (tags, stamps, clock, hits, misses) = icache.state_snapshot();
                Json::obj([
                    ("tags", json_u64s(tags.iter().map(|&t| u64::from(t)))),
                    ("stamps", json_u64s(stamps.iter().copied())),
                    ("clock", Json::Int(clock as i64)),
                    ("hits", Json::Int(hits as i64)),
                    ("misses", Json::Int(misses as i64)),
                ])
            })
            .collect();
        let banks = self
            .banks
            .iter()
            .map(|bank| {
                Json::obj([
                    (
                        "queue",
                        Json::Arr(
                            bank.queue
                                .iter()
                                .map(|req| {
                                    Json::obj([
                                        ("arrival", Json::Int(req.arrival as i64)),
                                        ("core", Json::Int(i64::from(req.core))),
                                        ("loc", loc_to_json(req.loc)),
                                        ("kind", kind_to_json(req.kind)),
                                        ("resp_latency", Json::Int(i64::from(req.resp_latency))),
                                        ("addr", Json::Int(i64::from(req.addr))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "stats",
                        Json::obj([
                            ("served", Json::Int(bank.stats.served as i64)),
                            ("conflicts", Json::Int(bank.stats.conflicts as i64)),
                            (
                                "max_queue_depth",
                                Json::Int(bank.stats.max_queue_depth as i64),
                            ),
                        ]),
                    ),
                ])
            })
            .collect();
        let responses = self
            .responses
            .iter()
            .map(|per_core| {
                Json::Arr(
                    per_core
                        .iter()
                        .map(|resp| {
                            Json::obj([
                                ("due", Json::Int(resp.due as i64)),
                                ("reg", reg_to_json(resp.reg)),
                                ("value", Json::Int(i64::from(resp.value))),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        let remaps: Vec<Json> = self
            .storage
            .map()
            .remap()
            .map(|remap| {
                remap
                    .entries()
                    .map(|(tile, from, to)| {
                        Json::Arr(vec![
                            Json::Int(i64::from(tile.0)),
                            Json::Int(i64::from(from.0)),
                            Json::Int(i64::from(to.0)),
                        ])
                    })
                    .collect()
            })
            .unwrap_or_default();
        let storage = Json::obj([
            ("spm", Json::Str(words_to_hex(self.storage.spm_words()))),
            ("spare", Json::Str(words_to_hex(self.storage.spare_words()))),
            (
                "spares_per_tile",
                Json::Int(i64::from(self.storage.spares_per_tile())),
            ),
            (
                "external",
                Json::Arr(
                    self.storage
                        .external_entries()
                        .iter()
                        .map(|&(offset, value)| {
                            Json::Arr(vec![Json::Int(offset as i64), Json::Int(i64::from(value))])
                        })
                        .collect(),
                ),
            ),
            ("touches", Json::Int(self.storage.spm_word_touches() as i64)),
            ("remaps", Json::Arr(remaps)),
        ]);
        let faults = match &self.faults {
            Some(ctrl) => Json::obj([
                (
                    "links",
                    Json::Arr(ctrl.links().iter().map(|&l| link_to_json(l)).collect()),
                ),
                (
                    "timed",
                    Json::Arr(
                        ctrl.remaining_timed()
                            .iter()
                            .map(|&(cycle, fault)| timed_to_json(cycle, fault))
                            .collect(),
                    ),
                ),
                (
                    "stuck",
                    Json::Arr(
                        ctrl.stuck_banks()
                            .iter()
                            .map(|&(tile, bank)| {
                                Json::Arr(vec![
                                    Json::Int(i64::from(tile.0)),
                                    Json::Int(i64::from(bank.0)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "dead_link_policy",
                    Json::str(policy_tag(ctrl.dead_link_policy())),
                ),
                (
                    "ecc",
                    Json::Arr(
                        ctrl.ecc_state()
                            .entries()
                            .into_iter()
                            .map(|(loc, mask)| {
                                Json::obj([
                                    ("loc", loc_to_json(loc)),
                                    ("mask", Json::Int(i64::from(mask))),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("report", ctrl.report().to_json()),
            ]),
            None => Json::Null,
        };
        let watchdog = match &self.watchdog {
            Some(watchdog) => Json::obj([
                ("threshold", Json::Int(watchdog.threshold() as i64)),
                ("last_progress", Json::Int(watchdog.last_progress() as i64)),
            ]),
            None => Json::Null,
        };
        let sampler = match &self.sampler {
            Some(sampler) => Json::obj([
                ("window", Json::Int(sampler.window as i64)),
                ("epoch_start", Json::Int(sampler.epoch_start as i64)),
                ("next_at", Json::Int(sampler.next_at as i64)),
                (
                    "retired_per_tile",
                    json_u64s(sampler.retired_per_tile.iter().copied()),
                ),
                ("local_accesses", Json::Int(sampler.local_accesses as i64)),
                ("remote_accesses", Json::Int(sampler.remote_accesses as i64)),
                ("conflicts", Json::Int(sampler.conflicts as i64)),
                ("offchip_bytes", Json::Int(sampler.offchip_bytes as i64)),
                ("spm_touches", Json::Int(sampler.spm_touches as i64)),
            ]),
            None => Json::Null,
        };
        Json::obj([
            ("schema", Json::str(CHECKPOINT_SCHEMA)),
            ("engine_version", Json::str(ENGINE_VERSION)),
            (
                "params_digest",
                Json::Str(format!("{:016x}", params.digest())),
            ),
            (
                "config",
                Json::obj([
                    ("groups", Json::Int(i64::from(self.config.groups()))),
                    (
                        "tiles_per_group",
                        Json::Int(i64::from(self.config.tiles_per_group())),
                    ),
                    (
                        "cores_per_tile",
                        Json::Int(i64::from(self.config.cores_per_tile())),
                    ),
                    (
                        "banks_per_tile",
                        Json::Int(i64::from(self.config.banks_per_tile())),
                    ),
                    ("bank_words", Json::Int(i64::from(self.config.bank_words()))),
                    (
                        "icache_bytes_per_tile",
                        Json::Int(i64::from(self.config.icache_bytes_per_tile())),
                    ),
                    (
                        "icache_banks_per_tile",
                        Json::Int(i64::from(self.config.icache_banks_per_tile())),
                    ),
                    (
                        "remote_ports_per_tile",
                        Json::Int(i64::from(self.config.remote_ports_per_tile())),
                    ),
                ]),
            ),
            (
                "params",
                Json::obj([
                    (
                        "tile_local",
                        Json::Int(i64::from(params.latency.tile_local)),
                    ),
                    (
                        "group_local",
                        Json::Int(i64::from(params.latency.group_local)),
                    ),
                    ("remote", Json::Int(i64::from(params.latency.remote))),
                    (
                        "max_outstanding",
                        Json::Int(i64::from(params.max_outstanding)),
                    ),
                    (
                        "taken_branch_penalty",
                        Json::Int(i64::from(params.taken_branch_penalty)),
                    ),
                    (
                        "icache_miss_penalty",
                        Json::Int(i64::from(params.icache_miss_penalty)),
                    ),
                    (
                        "icache_line_words",
                        Json::Int(i64::from(params.icache_line_words)),
                    ),
                    ("icache_ways", Json::Int(i64::from(params.icache_ways))),
                    (
                        "offchip_bytes_per_cycle",
                        Json::Int(i64::from(params.offchip_bytes_per_cycle)),
                    ),
                    (
                        "offchip_latency",
                        Json::Int(i64::from(params.offchip_latency)),
                    ),
                    (
                        "ecc_correction_penalty",
                        Json::Int(i64::from(params.ecc_correction_penalty)),
                    ),
                ]),
            ),
            ("cycle", Json::Int(self.cycle as i64)),
            ("dma_bytes", Json::Int(self.dma_bytes as i64)),
            ("dma_cycles", Json::Int(self.dma_cycles as i64)),
            (
                "program",
                json_u64s(self.program.to_words().into_iter().map(u64::from)),
            ),
            ("cores", Json::Arr(cores)),
            ("icaches", Json::Arr(icaches)),
            ("banks", Json::Arr(banks)),
            ("responses", Json::Arr(responses)),
            (
                "offchip",
                Json::obj([
                    ("busy_until", Json::Int(self.offchip.busy_until() as i64)),
                    ("total_bytes", Json::Int(self.offchip.total_bytes() as i64)),
                    (
                        "total_cycles",
                        Json::Int(self.offchip.total_cycles() as i64),
                    ),
                ]),
            ),
            ("storage", storage),
            ("faults", faults),
            ("watchdog", watchdog),
            ("sampler", sampler),
        ])
    }

    /// Rebuilds a cluster from a checkpoint document. The restored cluster
    /// runs with the process-default thread count
    /// ([`crate::default_threads`]) — the engine is bit-identical at any
    /// thread count, so cross-thread resume is exact. Observability is
    /// *not* restored: attach/arm it again with
    /// [`Cluster::attach_obs`]/[`Cluster::enable_timeseries`]/
    /// [`Cluster::enable_flight`] as needed (the latter re-attaches the
    /// flight ring to the restored fault controller).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] for a checkpoint from a different
    /// engine version or inconsistent parameters,
    /// [`CheckpointError::Malformed`] for structural problems.
    pub fn restore(doc: &Json) -> Result<Cluster, CheckpointError> {
        let schema = get_str(doc, "schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(CheckpointError::Mismatch {
                field: "schema",
                expected: CHECKPOINT_SCHEMA.to_string(),
                found: schema.to_string(),
            });
        }
        let engine = get_str(doc, "engine_version")?;
        if engine != ENGINE_VERSION {
            return Err(CheckpointError::Mismatch {
                field: "engine_version",
                expected: ENGINE_VERSION.to_string(),
                found: engine.to_string(),
            });
        }

        let cfg = get(doc, "config")?;
        let config = ClusterConfig::builder()
            .groups(get_u32(cfg, "groups")?)
            .tiles_per_group(get_u32(cfg, "tiles_per_group")?)
            .cores_per_tile(get_u32(cfg, "cores_per_tile")?)
            .banks_per_tile(get_u32(cfg, "banks_per_tile")?)
            .bank_words(get_u32(cfg, "bank_words")?)
            .icache_bytes_per_tile(get_u32(cfg, "icache_bytes_per_tile")?)
            .icache_banks_per_tile(get_u32(cfg, "icache_banks_per_tile")?)
            .remote_ports_per_tile(get_u32(cfg, "remote_ports_per_tile")?)
            .build()
            .map_err(|e| bad(format!("invalid config: {e}")))?;

        let p = get(doc, "params")?;
        let params = SimParams {
            latency: LatencyModel {
                tile_local: get_u32(p, "tile_local")?,
                group_local: get_u32(p, "group_local")?,
                remote: get_u32(p, "remote")?,
            },
            max_outstanding: get_u32(p, "max_outstanding")?,
            taken_branch_penalty: get_u32(p, "taken_branch_penalty")?,
            icache_miss_penalty: get_u32(p, "icache_miss_penalty")?,
            icache_line_words: get_u32(p, "icache_line_words")?,
            icache_ways: get_u32(p, "icache_ways")?,
            offchip_bytes_per_cycle: get_u32(p, "offchip_bytes_per_cycle")?,
            offchip_latency: get_u32(p, "offchip_latency")?,
            ecc_correction_penalty: get_u32(p, "ecc_correction_penalty")?,
            threads: default_threads(),
        };
        let expected_digest = format!("{:016x}", params.digest());
        let saved_digest = get_str(doc, "params_digest")?;
        if saved_digest != expected_digest {
            return Err(CheckpointError::Mismatch {
                field: "params_digest",
                expected: expected_digest,
                found: saved_digest.to_string(),
            });
        }

        let mut cluster = Cluster::new(config, params);

        // Program: set the field directly — `load_program` resets PCs,
        // which would destroy the per-core state restored next.
        let program_words: Vec<u32> = get_arr(doc, "program")?
            .iter()
            .map(|w| int_u32(w, "program word"))
            .collect::<Result<_, _>>()?;
        cluster.program =
            Program::from_words(&program_words).map_err(|e| bad(format!("bad program: {e}")))?;

        let cores = get_arr(doc, "cores")?;
        if cores.len() != cluster.cores.len() {
            return Err(bad(format!(
                "core count mismatch: saved {}, config has {}",
                cores.len(),
                cluster.cores.len()
            )));
        }
        for (core, saved) in cluster.cores.iter_mut().zip(cores) {
            let regs = u64_arr(saved, "regs")?;
            if regs.len() != 32 {
                return Err(bad("'regs' must have 32 entries"));
            }
            for (number, &value) in regs.iter().enumerate() {
                let value = u32::try_from(value).map_err(|_| bad("register value exceeds u32"))?;
                core.regs.write(Reg::new(number as u8), value);
            }
            core.pc = get_u32(saved, "pc")?;
            core.restore_timing(
                get_bool(saved, "halted")?,
                get_bool(saved, "hung")?,
                get_u32(saved, "busy")?,
                get_u32(saved, "outstanding")?,
                get_u32(saved, "bubble")?,
            );
            core.stats = core_stats_from_json(get(saved, "stats")?)?;
        }

        let icaches = get_arr(doc, "icaches")?;
        if icaches.len() != cluster.icaches.len() {
            return Err(bad(format!(
                "icache count mismatch: saved {}, config has {}",
                icaches.len(),
                cluster.icaches.len()
            )));
        }
        for (icache, saved) in cluster.icaches.iter_mut().zip(icaches) {
            let tags = u64_arr(saved, "tags")?
                .into_iter()
                .map(|t| u32::try_from(t).map_err(|_| bad("icache tag exceeds u32")))
                .collect::<Result<Vec<_>, _>>()?;
            let stamps = u64_arr(saved, "stamps")?;
            icache
                .restore_state(
                    tags,
                    stamps,
                    get_u64(saved, "clock")?,
                    get_u64(saved, "hits")?,
                    get_u64(saved, "misses")?,
                )
                .map_err(bad)?;
        }

        let banks = get_arr(doc, "banks")?;
        if banks.len() != cluster.banks.len() {
            return Err(bad(format!(
                "bank count mismatch: saved {}, config has {}",
                banks.len(),
                cluster.banks.len()
            )));
        }
        for (bank, saved) in cluster.banks.iter_mut().zip(banks) {
            let queue = get_arr(saved, "queue")?
                .iter()
                .map(|req| {
                    Ok(PendingAccess {
                        arrival: get_u64(req, "arrival")?,
                        core: get_u32(req, "core")?,
                        loc: loc_from_json(get(req, "loc")?)?,
                        kind: kind_from_json(get(req, "kind")?)?,
                        resp_latency: get_u32(req, "resp_latency")?,
                        addr: get_u32(req, "addr")?,
                    })
                })
                .collect::<Result<Vec<_>, CheckpointError>>()?;
            let stats = get(saved, "stats")?;
            *bank = Bank {
                queue,
                stats: BankStats {
                    served: get_u64(stats, "served")?,
                    conflicts: get_u64(stats, "conflicts")?,
                    max_queue_depth: get_u64(stats, "max_queue_depth")?,
                },
            };
        }

        let responses = get_arr(doc, "responses")?;
        if responses.len() != cluster.responses.len() {
            return Err(bad(format!(
                "response-queue count mismatch: saved {}, config has {}",
                responses.len(),
                cluster.responses.len()
            )));
        }
        for (queue, saved) in cluster.responses.iter_mut().zip(responses) {
            let saved = saved
                .as_arr()
                .ok_or_else(|| bad("'responses' entries must be arrays"))?;
            *queue = saved
                .iter()
                .map(|resp| {
                    Ok(Response {
                        due: get_u64(resp, "due")?,
                        reg: reg_from_json(get(resp, "reg")?, "response reg")?,
                        value: get_u32(resp, "value")?,
                    })
                })
                .collect::<Result<Vec<_>, CheckpointError>>()?;
        }

        let offchip = get(doc, "offchip")?;
        cluster.offchip.restore_state(
            get_u64(offchip, "busy_until")?,
            get_u64(offchip, "total_bytes")?,
            get_u64(offchip, "total_cycles")?,
        );

        // Storage: re-establish the remap table first (so the spare array
        // has its final size), then overwrite all contents wholesale.
        let storage = get(doc, "storage")?;
        let spares_per_tile = get_u32(storage, "spares_per_tile")?;
        if spares_per_tile > 0 {
            cluster.storage.provision_spares(spares_per_tile);
        }
        for entry in get_arr(storage, "remaps")? {
            let triple = entry
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| bad("remap entries must be [tile, from, to] triples"))?;
            let tile = TileId(int_u32(&triple[0], "remap tile")?);
            let from = BankId(int_u32(&triple[1], "remap from-bank")?);
            let to = BankId(int_u32(&triple[2], "remap to-bank")?);
            let spare = cluster
                .storage
                .remap_bank(tile, from)
                .map_err(|e| bad(format!("replaying remap failed: {e}")))?;
            if spare != to {
                return Err(bad(format!(
                    "remap replay diverged: tile {} bank {} landed on spare {} (saved {})",
                    tile.0, from.0, spare.0, to.0
                )));
            }
        }
        let spm = hex_to_words(get_str(storage, "spm")?, "'spm'")?;
        let spare = hex_to_words(get_str(storage, "spare")?, "'spare'")?;
        let external = get_arr(storage, "external")?
            .iter()
            .map(|entry| {
                let pair = entry
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad("external entries must be [offset, value] pairs"))?;
                Ok((
                    int_u64(&pair[0], "external offset")?,
                    int_u32(&pair[1], "external value")?,
                ))
            })
            .collect::<Result<Vec<_>, CheckpointError>>()?;
        cluster
            .storage
            .restore_contents(spm, spare, external, get_u64(storage, "touches")?)
            .map_err(bad)?;

        match get(doc, "faults")? {
            Json::Null => {}
            faults => {
                let links = get_arr(faults, "links")?
                    .iter()
                    .map(link_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let timed = get_arr(faults, "timed")?
                    .iter()
                    .map(timed_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let stuck = get_arr(faults, "stuck")?
                    .iter()
                    .map(|entry| {
                        let pair = entry
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| bad("stuck entries must be [tile, bank] pairs"))?;
                        Ok((
                            TileId(int_u32(&pair[0], "stuck tile")?),
                            BankId(int_u32(&pair[1], "stuck bank")?),
                        ))
                    })
                    .collect::<Result<Vec<_>, CheckpointError>>()?;
                let ecc = EccState::from_entries(
                    get_arr(faults, "ecc")?
                        .iter()
                        .map(|entry| {
                            Ok((loc_from_json(get(entry, "loc")?)?, get_u32(entry, "mask")?))
                        })
                        .collect::<Result<Vec<_>, CheckpointError>>()?,
                );
                let report = FaultReport::from_json(get(faults, "report")?).map_err(bad)?;
                cluster.faults = Some(FaultController::from_snapshot(
                    links,
                    timed,
                    ecc,
                    stuck,
                    policy_from_tag(get_str(faults, "dead_link_policy")?)?,
                    report,
                ));
            }
        }

        match get(doc, "watchdog")? {
            Json::Null => {}
            watchdog => {
                // `Watchdog::new(threshold, now)` arms at `now`; feeding the
                // saved last-progress cycle reproduces the exact stall
                // window.
                cluster.watchdog = Some(Watchdog::new(
                    get_u64(watchdog, "threshold")?,
                    get_u64(watchdog, "last_progress")?,
                ));
            }
        }

        match get(doc, "sampler")? {
            Json::Null => {}
            sampler => {
                cluster.sampler = Some(Sampler {
                    window: get_u64(sampler, "window")?.max(1),
                    epoch_start: get_u64(sampler, "epoch_start")?,
                    next_at: get_u64(sampler, "next_at")?,
                    retired_per_tile: u64_arr(sampler, "retired_per_tile")?,
                    local_accesses: get_u64(sampler, "local_accesses")?,
                    remote_accesses: get_u64(sampler, "remote_accesses")?,
                    conflicts: get_u64(sampler, "conflicts")?,
                    offchip_bytes: get_u64(sampler, "offchip_bytes")?,
                    spm_touches: get_u64(sampler, "spm_touches")?,
                });
            }
        }

        cluster.cycle = get_u64(doc, "cycle")?;
        cluster.dma_bytes = get_u64(doc, "dma_bytes")?;
        cluster.dma_cycles = get_u64(doc, "dma_cycles")?;
        Ok(cluster)
    }

    /// Loads and restores a checkpoint file. A file that exists but does
    /// not parse is quarantined (renamed `.corrupt`) and reported as
    /// [`CheckpointError::Malformed`] — never a panic.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] for a missing/unreadable file, plus
    /// everything [`Cluster::restore`] can raise.
    pub fn restore_from_file(path: &Path) -> Result<Cluster, CheckpointError> {
        match load_json_file(path) {
            LoadOutcome::Loaded(doc) => Cluster::restore(&doc),
            LoadOutcome::Missing => Err(CheckpointError::Io {
                path: path.display().to_string(),
                message: "checkpoint file missing or unreadable".to_string(),
            }),
            LoadOutcome::Quarantined { renamed_to, error } => {
                Err(CheckpointError::Malformed(format!(
                    "corrupt checkpoint quarantined to {}: {error}",
                    renamed_to.display()
                )))
            }
        }
    }

    /// Re-arms time-series sampling on a restored cluster without
    /// discarding the checkpointed epoch cursors.
    /// [`Cluster::enable_timeseries`] always rebuilds the sampler
    /// rebaselined at the current cycle — correct for a fresh run, but on
    /// a resume it would tear up the mid-epoch state the checkpoint
    /// carried. This instead keeps the restored sampler and only aligns
    /// the attached [`mempool_obs::TimeSeries`] sink's window with it;
    /// when the checkpoint carried no sampler, it falls back to
    /// [`Cluster::enable_timeseries`] with `window`.
    ///
    /// # Panics
    ///
    /// Panics if no observability handle is attached.
    pub fn resume_timeseries(&mut self, window: u64) {
        match &self.sampler {
            Some(sampler) => {
                let hooks = self
                    .obs
                    .as_ref()
                    .expect("attach_obs before resume_timeseries");
                hooks.obs.series.set_window(sampler.window);
            }
            None => self.enable_timeseries(window),
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpointer: periodic atomic snapshot files with bounded retention
// ---------------------------------------------------------------------------

/// Writes periodic checkpoint files into a directory: atomic temp+rename
/// writes, `ckpt-<cycle>.json` names, and bounded retention (the oldest
/// file is deleted once more than `keep` exist).
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    every: u64,
    keep: usize,
    written: VecDeque<PathBuf>,
}

impl Checkpointer {
    /// Creates the directory (if needed) and a checkpointer snapshotting
    /// every `every` cycles, retaining the newest `keep` files. Zero
    /// `every`/`keep` are clamped to 1.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>, every: u64, keep: usize) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CheckpointError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(Checkpointer {
            dir,
            every: every.max(1),
            keep: keep.max(1),
            written: VecDeque::new(),
        })
    }

    /// The snapshot interval in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// The newest checkpoint written by this checkpointer, if any.
    pub fn last_good(&self) -> Option<&Path> {
        self.written.back().map(PathBuf::as_path)
    }

    /// Snapshots `cluster` into `ckpt-<cycle>.json` atomically (temp
    /// file then rename, so a crash mid-write never leaves a
    /// half-written file under the final name) and enforces the
    /// retention bound.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn save(&mut self, cluster: &Cluster) -> Result<PathBuf, CheckpointError> {
        let path = self.dir.join(format!("ckpt-{:012}.json", cluster.cycle()));
        let tmp = self.dir.join(format!(".tmp-ckpt-{}", std::process::id()));
        let io_err = |p: &Path, e: std::io::Error| CheckpointError::Io {
            path: p.display().to_string(),
            message: e.to_string(),
        };
        fs::write(&tmp, cluster.checkpoint().to_pretty()).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        if self.written.back() != Some(&path) {
            self.written.push_back(path.clone());
        }
        while self.written.len() > self.keep {
            if let Some(old) = self.written.pop_front() {
                let _ = fs::remove_file(old);
            }
        }
        Ok(path)
    }
}

/// Runs `cluster` to quiescence within `budget` cycles, snapshotting into
/// `ckpt` every [`Checkpointer::every`] cycles of simulated progress.
/// Returns the final cycle, exactly like [`Cluster::run`] — the
/// checkpointing slices never change simulated behavior, because
/// [`Cluster::run`]'s budget is the only thing being subdivided.
///
/// # Errors
///
/// [`CheckpointError::Sim`] with [`SimError::Timeout`] when the budget is
/// exhausted (a last checkpoint is saved first, so the run is resumable),
/// any other simulation error as-is (the caller decides whether to keep
/// the last-good checkpoint next to the crash dump), and
/// [`CheckpointError::Io`] if a snapshot cannot be written.
pub fn run_with_checkpoints(
    cluster: &mut Cluster,
    budget: u64,
    ckpt: &mut Checkpointer,
) -> Result<u64, CheckpointError> {
    let deadline = cluster.cycle() + budget;
    loop {
        let remaining = deadline.saturating_sub(cluster.cycle());
        if remaining == 0 {
            ckpt.save(cluster)?;
            return Err(CheckpointError::Sim(SimError::Timeout { cycles: budget }));
        }
        let slice = remaining.min(ckpt.every());
        match cluster.run(slice) {
            Ok(end) => return Ok(end),
            Err(SimError::Timeout { .. }) => {
                // The slice expired, not the budget: snapshot and keep
                // going. (Synchronous DMA can overshoot the slice deadline;
                // the loop re-checks against the real budget.)
                ckpt.save(cluster)?;
            }
            Err(e) => return Err(CheckpointError::Sim(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_isa::Program;

    fn small_config() -> ClusterConfig {
        ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap()
    }

    fn busy_program() -> Program {
        Program::assemble(
            r#"
                csrr t0, mhartid
                slli t0, t0, 2
                li   t1, 40
                li   a0, 0
            loop:
                lw   a1, 0(t0)
                add  a0, a0, a1
                addi a1, a0, 3
                sw   a1, 0(t0)
                amoadd.w a2, a1, (t0)
                addi t1, t1, -1
                bnez t1, loop
                wfi
            "#,
        )
        .unwrap()
    }

    fn fresh_cluster() -> Cluster {
        let mut cluster = Cluster::new(small_config(), SimParams::default());
        cluster.load_program(busy_program());
        cluster.preload_icaches();
        cluster
    }

    #[test]
    fn restore_then_run_matches_unbroken_run() {
        let mut unbroken = fresh_cluster();
        let end = unbroken.run(100_000).unwrap();
        let want = unbroken.stats().digest();

        let mut snap = fresh_cluster();
        // Interrupt mid-run at an arbitrary cycle.
        assert!(matches!(snap.run(37), Err(SimError::Timeout { .. })));
        let doc = Json::parse(&snap.checkpoint().to_pretty()).unwrap();
        let mut restored = Cluster::restore(&doc).unwrap();
        let resumed_end = restored.run(100_000).unwrap();
        assert_eq!(resumed_end, end);
        assert_eq!(restored.stats().digest(), want);
    }

    #[test]
    fn checkpoint_of_quiescent_cluster_round_trips_stats() {
        let mut cluster = fresh_cluster();
        cluster.run(100_000).unwrap();
        let doc = cluster.checkpoint();
        let restored = Cluster::restore(&doc).unwrap();
        assert_eq!(restored.stats(), cluster.stats());
        assert_eq!(restored.stats().digest(), cluster.stats().digest());
        assert!(restored.quiescent());
    }

    #[test]
    fn engine_version_mismatch_is_rejected() {
        let cluster = fresh_cluster();
        let doc = cluster.checkpoint();
        let Json::Obj(mut pairs) = doc else {
            panic!("checkpoint must be an object")
        };
        for (key, value) in &mut pairs {
            if key == "engine_version" {
                *value = Json::str("mempool-sim/v0-ancient");
            }
        }
        let err = Cluster::restore(&Json::Obj(pairs)).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Mismatch {
                field: "engine_version",
                ..
            }
        ));
    }

    #[test]
    fn truncated_checkpoint_file_is_quarantined_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("mempool-ckpt-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt-000000000001.json");
        fs::write(&path, "{\"schema\": \"mempool-checkpoint/v1\", trunc").unwrap();
        let err = Cluster::restore_from_file(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)));
        assert!(!path.exists(), "corrupt file renamed away");
        assert!(dir.join("ckpt-000000000001.json.corrupt").exists());
        // A second attempt is a clean miss, not a repeat parse failure.
        assert!(matches!(
            Cluster::restore_from_file(&path).unwrap_err(),
            CheckpointError::Io { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointer_writes_atomically_and_bounds_retention() {
        let dir = std::env::temp_dir().join(format!("mempool-ckpt-keep-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut ckpt = Checkpointer::new(&dir, 25, 2).unwrap();
        let mut cluster = fresh_cluster();
        let err = run_with_checkpoints(&mut cluster, 100, &mut ckpt).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Sim(SimError::Timeout { cycles: 100 })
        ));
        let files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len(), 2, "retention must keep exactly 2: {files:?}");
        assert!(files.iter().all(|f| f.starts_with("ckpt-")));
        assert!(files.iter().all(|f| !f.contains("tmp")));
        let last = ckpt.last_good().unwrap().to_path_buf();
        assert!(last.exists());

        // The interrupted run resumes from the last checkpoint and matches
        // an unbroken run bit-for-bit.
        let mut unbroken = fresh_cluster();
        let end = unbroken.run(100_000).unwrap();
        let mut resumed = Cluster::restore_from_file(&last).unwrap();
        assert_eq!(resumed.cycle(), 100);
        assert_eq!(resumed.run(100_000).unwrap(), end);
        assert_eq!(resumed.stats().digest(), unbroken.stats().digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_with_checkpoints_returns_the_same_result_as_plain_run() {
        let dir = std::env::temp_dir().join(format!("mempool-ckpt-same-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut plain = fresh_cluster();
        let end = plain.run(100_000).unwrap();

        let mut ckpt = Checkpointer::new(&dir, 50, 3).unwrap();
        let mut sliced = fresh_cluster();
        let sliced_end = run_with_checkpoints(&mut sliced, 100_000, &mut ckpt).unwrap();
        assert_eq!(sliced_end, end);
        assert_eq!(sliced.stats().digest(), plain.stats().digest());
        assert!(ckpt.last_good().is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
