//! The cluster simulator.
//!
//! One [`Cluster`] owns every core, SPM bank, instruction cache, and the
//! off-chip port, and advances them in lock-step cycles. Each cycle has
//! three phases (see [`crate::engine`] for the full tick anatomy):
//!
//! 1. **bank service** — every bank serves at most one request whose
//!    network arrival lies strictly in the past (round-robin via FIFO order
//!    among contenders, counting conflict cycles);
//! 2. **response delivery** — completed transactions write back to their
//!    core's register file and release scoreboard entries;
//! 3. **issue** — every non-halted core consumes pipeline bubbles, checks
//!    its I$, and issues at most one instruction through the scoreboard.
//!
//! Delivery and issue are tile-local, which is what the phased-tick
//! engine exploits: with [`SimParams::threads`]` > 1`, [`Cluster::run`]
//! advances tiles on a host-thread pool between two deterministic
//! sequential phases, producing bit-identical results to the sequential
//! engine at any thread count.
//!
//! The phase split realizes the paper's zero-load latencies exactly: a
//! tile-local load issued in cycle `c` is usable in cycle `c+1`, a
//! group-local one in `c+3`, and a remote one in `c+5`.

use std::fmt;

use mempool_arch::{
    AccessClass, BankLocation, ClusterConfig, GlobalCoreId, LatencyModel, MemoryRegion, RemapError,
    TileId, Topology,
};
use mempool_fault::{CoreDiagnostic, FaultController, FaultPlan, FaultReport, Watchdog};
use mempool_isa::exec::{MemAccessKind, MemWidth};
use mempool_isa::{Program, Reg};
use mempool_obs::{chrome_trace_with_counters, Counter, FlightRecorder, Json, Obs, TrackId};

use crate::core::Core;
use crate::engine::{self, LinkSnapshot, SampleInputs, TileScratch};
use crate::icache::ICache;
use crate::memory::{MemoryError, Storage};
use crate::offchip::OffchipPort;
use crate::params::SimParams;
use crate::stats::{BankStats, ClusterStats};
use crate::trace::Trace;

/// Error raised by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A data access failed.
    Memory(MemoryError),
    /// A core's program counter left the program.
    PcOutOfRange {
        /// The offending core.
        core: GlobalCoreId,
        /// Its program counter.
        pc: u32,
    },
    /// Not all cores halted within the cycle budget.
    Timeout {
        /// The exhausted budget.
        cycles: u64,
    },
    /// No program is loaded.
    NoProgram,
    /// A core was resumed while it still had outstanding transactions
    /// (e.g. a request black-holed by a dead F2F link).
    ResumeWithOutstanding {
        /// The offending core.
        core: GlobalCoreId,
        /// Its outstanding-transaction count.
        outstanding: u32,
    },
    /// An access targeted a tile behind a dead (open) F2F link, under the
    /// fail-fast [`DeadLinkPolicy::Error`] policy.
    LinkDead {
        /// Tile whose vertical link is open.
        tile: TileId,
    },
    /// The SEC-DED logic detected a multi-bit, uncorrectable error.
    EccUncorrectable {
        /// Word the error was detected in.
        loc: BankLocation,
        /// The accumulated error mask.
        mask: u32,
    },
    /// The forward-progress watchdog saw no retired instruction and no
    /// delivered memory response anywhere in the cluster for its whole
    /// threshold window.
    Deadlock {
        /// Cycles since the last forward progress.
        stalled_for: u64,
        /// Per-core state snapshot at detection time.
        diagnostics: Vec<CoreDiagnostic>,
    },
    /// The spare-bank remap policy could not take a faulted bank out of
    /// service.
    Remap(RemapError),
}

impl SimError {
    /// Stable, machine-readable discriminant name (used in
    /// `crashdump.json`).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Memory(_) => "memory",
            SimError::PcOutOfRange { .. } => "pc-out-of-range",
            SimError::Timeout { .. } => "timeout",
            SimError::NoProgram => "no-program",
            SimError::ResumeWithOutstanding { .. } => "resume-with-outstanding",
            SimError::LinkDead { .. } => "link-dead",
            SimError::EccUncorrectable { .. } => "ecc-uncorrectable",
            SimError::Deadlock { .. } => "deadlock",
            SimError::Remap(_) => "remap",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Memory(e) => write!(f, "memory error: {e}"),
            SimError::PcOutOfRange { core, pc } => {
                write!(f, "core {core} fetched outside the program at {pc:#010x}")
            }
            SimError::Timeout { cycles } => {
                write!(f, "cluster did not halt within {cycles} cycles")
            }
            SimError::NoProgram => f.write_str("no program loaded"),
            SimError::ResumeWithOutstanding { core, outstanding } => write!(
                f,
                "core {core} resumed with {outstanding} outstanding transaction(s)"
            ),
            SimError::LinkDead { tile } => {
                write!(f, "access through dead F2F link of tile {tile}")
            }
            SimError::EccUncorrectable { loc, mask } => {
                write!(
                    f,
                    "uncorrectable multi-bit error at {loc} (mask {mask:#010x})"
                )
            }
            SimError::Deadlock {
                stalled_for,
                diagnostics,
            } => {
                writeln!(f, "deadlock: no forward progress for {stalled_for} cycles")?;
                for diag in diagnostics {
                    writeln!(f, "  {diag}")?;
                }
                Ok(())
            }
            SimError::Remap(e) => write!(f, "bank remap failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemoryError> for SimError {
    fn from(e: MemoryError) -> Self {
        SimError::Memory(e)
    }
}

impl From<RemapError> for SimError {
    fn from(e: RemapError) -> Self {
        SimError::Remap(e)
    }
}

/// A request waiting at (or traveling to) a bank.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingAccess {
    /// Cycle the request reaches the bank; servable strictly after.
    pub(crate) arrival: u64,
    pub(crate) core: u32,
    pub(crate) loc: BankLocation,
    pub(crate) kind: MemAccessKind,
    pub(crate) resp_latency: u32,
    /// Byte address, kept for sub-word lane selection.
    pub(crate) addr: u32,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct Bank {
    pub(crate) queue: Vec<PendingAccess>,
    pub(crate) stats: BankStats,
}

/// A completed transaction traveling back to its core.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Response {
    pub(crate) due: u64,
    pub(crate) reg: Option<Reg>,
    pub(crate) value: u32,
}

/// Observability attachment: shared handle plus the tracks and counters
/// this cluster records into (see [`Cluster::attach_obs`]). `Rc`-based
/// and therefore confined to the main thread — the engine only touches it
/// from the sequential phases.
#[derive(Debug)]
pub(crate) struct ClusterObs {
    pub(crate) obs: Obs,
    /// Timeline of off-chip port activity (DMA transfers and waits).
    dma_track: TrackId,
    /// One timeline per core, for `wfi`/resume (barrier) spans.
    pub(crate) core_tracks: Vec<TrackId>,
    dma_bytes: Counter,
    dma_transfers: Counter,
    pub(crate) bank_conflicts: Counter,
    pub(crate) icache_misses: Counter,
    pub(crate) fault_retries: Counter,
    pub(crate) ecc_corrected: Counter,
}

impl ClusterObs {
    fn dma_span(&self, name: &str, start: u64, end: u64, bytes: u64, to_spm: bool) {
        self.obs.spans.complete(
            self.dma_track,
            name,
            start,
            end,
            vec![
                ("bytes".to_string(), Json::Int(bytes as i64)),
                (
                    "direction".to_string(),
                    Json::str(if to_spm { "to_spm" } else { "to_ext" }),
                ),
            ],
        );
        self.dma_bytes.add(bytes);
        self.dma_transfers.inc();
    }
}

/// Per-epoch sampling state for the cycle-sampled time-series
/// (see [`Cluster::enable_timeseries`]). Holds the counter totals at the
/// previous sample so each epoch records deltas.
#[derive(Debug)]
pub(crate) struct Sampler {
    pub(crate) window: u64,
    /// True start cycle of the open epoch (the previous sample, or the
    /// cycle sampling was enabled at). Carried exactly — never clamped —
    /// so rate denominators are true elapsed cycles and zero-length
    /// windows can be dropped instead of spiking.
    pub(crate) epoch_start: u64,
    /// First cycle at (or after) which to take the next sample.
    pub(crate) next_at: u64,
    pub(crate) retired_per_tile: Vec<u64>,
    pub(crate) local_accesses: u64,
    pub(crate) remote_accesses: u64,
    pub(crate) conflicts: u64,
    pub(crate) offchip_bytes: u64,
    pub(crate) spm_touches: u64,
}

impl Sampler {
    /// Re-baselines the counters at `now`: the next epoch's deltas are
    /// read against `inputs` and close no earlier than `now + window`.
    pub(crate) fn rebaseline(&mut self, inputs: SampleInputs, now: u64) {
        self.retired_per_tile = inputs.retired_per_tile;
        self.local_accesses = inputs.local_accesses;
        self.remote_accesses = inputs.remote_accesses;
        self.conflicts = inputs.conflicts;
        self.offchip_bytes = inputs.offchip_bytes;
        self.spm_touches = inputs.spm_touches;
        self.epoch_start = now;
        self.next_at = now + self.window;
    }
}

/// Cycle-accurate model of a MemPool cluster.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug)]
pub struct Cluster {
    pub(crate) config: ClusterConfig,
    pub(crate) topo: Topology,
    pub(crate) params: SimParams,
    pub(crate) storage: Storage,
    pub(crate) program: Program,
    pub(crate) cores: Vec<Core>,
    pub(crate) icaches: Vec<ICache>,
    pub(crate) banks: Vec<Bank>,
    pub(crate) responses: Vec<Vec<Response>>,
    pub(crate) offchip: OffchipPort,
    pub(crate) cycle: u64,
    pub(crate) dma_bytes: u64,
    pub(crate) dma_cycles: u64,
    pub(crate) trace: Option<Trace>,
    pub(crate) obs: Option<ClusterObs>,
    /// Injected-fault state, present only in fault-injection runs.
    pub(crate) faults: Option<FaultController>,
    /// Forward-progress watchdog, armed by [`Cluster::set_watchdog`].
    pub(crate) watchdog: Option<Watchdog>,
    /// Per-epoch sampling state, armed by [`Cluster::enable_timeseries`].
    pub(crate) sampler: Option<Sampler>,
    /// Whether cluster events mirror into the obs flight ring
    /// (armed by [`Cluster::enable_flight`]).
    pub(crate) flight_enabled: bool,
    /// Per-tile deferred-side-effect buffers for the phased-tick engine
    /// (drained empty at the end of every tick).
    pub(crate) scratches: Vec<TileScratch>,
    /// Per-tick F2F link-health snapshot for the engine's local phase.
    pub(crate) links: LinkSnapshot,
    /// Preallocated buffers for the quantum engine's hot path (mailboxes,
    /// worker lanes, boundary scratch), reused across ticks and runs.
    pub(crate) quantum: engine::QuantumArena,
    /// When set, [`Cluster::run`] skips the host-parallelism clamp and
    /// spawns exactly [`Cluster::threads`] workers even on a host with
    /// fewer CPUs. Transient (never serialized); the equivalence tests use
    /// it so the concurrent protocol is really exercised on small hosts.
    pub(crate) oversubscribe: bool,
}

impl Cluster {
    /// Creates a cluster with zeroed memory and no program.
    pub fn new(config: ClusterConfig, params: SimParams) -> Self {
        let num_cores = config.num_cores() as usize;
        let num_banks = config.num_banks() as usize;
        let num_tiles = config.num_tiles() as usize;
        let storage = Storage::new(&config);
        let icaches = (0..num_tiles)
            .map(|_| {
                ICache::with_ways(
                    config.icache_bytes_per_tile(),
                    params.icache_line_words,
                    params.icache_ways,
                )
            })
            .collect();
        Cluster {
            topo: Topology::new(config.clone()),
            config,
            storage,
            program: Program::default(),
            cores: (0..num_cores).map(|_| Core::new()).collect(),
            icaches,
            banks: vec![Bank::default(); num_banks],
            responses: vec![Vec::new(); num_cores],
            offchip: OffchipPort::new(params.offchip_bytes_per_cycle, params.offchip_latency),
            params,
            cycle: 0,
            dma_bytes: 0,
            dma_cycles: 0,
            trace: None,
            obs: None,
            faults: None,
            watchdog: None,
            sampler: None,
            flight_enabled: false,
            scratches: (0..num_tiles).map(|_| TileScratch::default()).collect(),
            links: LinkSnapshot::default(),
            quantum: engine::QuantumArena::default(),
            oversubscribe: false,
        }
    }

    /// Sets the number of host threads the phased-tick engine uses for
    /// subsequent [`Cluster::run`] calls. `1` (or `0`, clamped) selects
    /// the sequential engine; any value is also capped at the tile count
    /// since a tile is the unit of parallelism. Never changes simulated
    /// behavior — results are bit-identical at every thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.params.threads = threads.max(1);
    }

    /// The effective host-thread count for [`Cluster::run`] (after
    /// clamping to the tile count).
    pub fn threads(&self) -> usize {
        self.params
            .threads
            .max(1)
            .min(self.config.num_tiles() as usize)
    }

    /// The worker count [`Cluster::run`] will actually use: [`Cluster::threads`]
    /// further clamped to the host's available parallelism. Oversubscribing
    /// a host (e.g. 4 spinning workers on 1 CPU) only adds scheduler
    /// thrash, and results are bit-identical at every worker count, so the
    /// clamp is invisible except in wall-clock time.
    pub fn effective_workers(&self) -> usize {
        if self.oversubscribe {
            self.threads()
        } else {
            self.threads().min(engine::host_parallelism())
        }
    }

    /// Disables the host-parallelism clamp of [`Cluster::effective_workers`]
    /// so a run really spawns [`Cluster::threads`] workers. Only useful to
    /// tests that must exercise the concurrent engine protocol on hosts
    /// with fewer CPUs than the probed thread count; never changes results
    /// (they are bit-identical at every worker count), only wall-clock.
    #[doc(hidden)]
    pub fn force_oversubscribe(&mut self) {
        self.oversubscribe = true;
    }

    /// Attaches an observability handle. The cluster records DMA transfers
    /// and waits as spans on a `dma` track, each core's `wfi`-to-resume
    /// (barrier) intervals as spans on per-core tracks, and DMA bytes /
    /// transfer and bank-conflict counts as labeled metrics — all grouped
    /// under a trace process named `run`.
    ///
    /// Recording costs nothing until attached; re-attaching replaces the
    /// previous attachment (closing its open spans).
    pub fn attach_obs(&mut self, obs: &Obs, run: &str) {
        self.detach_obs();
        let process = obs.spans.process(run);
        let dma_track = obs.spans.track(process, "dma");
        let core_tracks = (0..self.cores.len())
            .map(|i| obs.spans.track(process, &format!("core{i}")))
            .collect();
        let labels = [("run", run)];
        self.obs = Some(ClusterObs {
            dma_track,
            core_tracks,
            dma_bytes: obs.metrics.counter("sim_dma_bytes_total", &labels),
            dma_transfers: obs.metrics.counter("sim_dma_transfers_total", &labels),
            bank_conflicts: obs
                .metrics
                .counter("sim_bank_conflict_cycles_total", &labels),
            icache_misses: obs.metrics.counter("sim_icache_misses_total", &labels),
            fault_retries: obs.metrics.counter("sim_fault_retries_total", &labels),
            ecc_corrected: obs.metrics.counter("sim_ecc_corrected_total", &labels),
            obs: obs.clone(),
        });
    }

    /// Detaches the observability handle, closing any spans this cluster
    /// left open (e.g. cores still parked at `wfi`) at the current cycle.
    /// Time-series sampling and flight recording stop with it.
    pub fn detach_obs(&mut self) {
        if let Some(hooks) = self.obs.take() {
            for &track in &hooks.core_tracks {
                while hooks.obs.spans.end(track, self.cycle).is_some() {}
            }
        }
        self.sampler = None;
        self.flight_enabled = false;
    }

    /// Enables per-epoch time-series sampling: every `window` cycles (the
    /// first full epoch ends `window` cycles from now), [`Cluster::step`]
    /// pushes one sample per series into the attached [`Obs`]'s
    /// [`mempool_obs::TimeSeries`]:
    ///
    /// * `ipc/tile{t}` — instructions retired per cycle, per tile;
    /// * `l1_local_rate` / `l1_remote_rate` — tile-local and off-tile SPM
    ///   requests per cycle;
    /// * `bank_conflict_rate` — bank-conflict cycles per cycle;
    /// * `offchip_occupancy` — fraction of the epoch's peak off-chip
    ///   bandwidth consumed by scheduled transfers (can exceed 1 when
    ///   asynchronous DMA books the port ahead of time);
    /// * `offchip_backlog` — cycles of already scheduled off-chip work
    ///   still draining;
    /// * `outstanding` — in-flight memory transactions across all cores;
    /// * `spm_touch_rate` — SPM words read or written per cycle (includes
    ///   DMA word traffic).
    ///
    /// Epochs only close inside `step()`; clock jumps (synchronous DMA,
    /// [`Cluster::advance_to`]) fold into the next sample, whose rates are
    /// computed over the true elapsed cycles. A zero `window` is clamped
    /// to 1.
    ///
    /// # Panics
    ///
    /// Panics if no observability handle is attached.
    pub fn enable_timeseries(&mut self, window: u64) {
        let hooks = self
            .obs
            .as_ref()
            .expect("attach_obs before enable_timeseries");
        hooks.obs.series.set_window(window);
        let window = hooks.obs.series.window();
        let inputs = self.sample_inputs(self.cycle);
        let mut sampler = Sampler {
            window,
            epoch_start: self.cycle,
            next_at: self.cycle + window,
            retired_per_tile: Vec::new(),
            local_accesses: 0,
            remote_accesses: 0,
            conflicts: 0,
            offchip_bytes: 0,
            spm_touches: 0,
        };
        sampler.rebaseline(inputs, self.cycle);
        self.sampler = Some(sampler);
    }

    /// Enables flight recording: cluster events (memory transactions, DMA
    /// transfers, watchdog expiry) and — under fault injection — fault/ECC
    /// events mirror into the attached [`Obs`]'s
    /// [`mempool_obs::FlightRecorder`], bounded to the most recent
    /// `capacity` events. [`Cluster::crash_dump`] folds the ring into
    /// `crashdump.json`.
    ///
    /// # Panics
    ///
    /// Panics if no observability handle is attached or `capacity` is zero.
    pub fn enable_flight(&mut self, capacity: usize) {
        let hooks = self.obs.as_ref().expect("attach_obs before enable_flight");
        hooks.obs.flight.set_capacity(capacity);
        self.flight_enabled = true;
        let flight = hooks.obs.flight.clone();
        if let Some(faults) = self.faults.as_mut() {
            faults.attach_flight(flight);
        }
    }

    /// The flight ring to record into, when flight recording is on.
    fn flight_handle(&self) -> Option<FlightRecorder> {
        if !self.flight_enabled {
            return None;
        }
        self.obs.as_ref().map(|hooks| hooks.obs.flight.clone())
    }

    /// Collects the time-series sampling snapshot at `now` (see
    /// [`engine::collect_samples`]).
    pub(crate) fn sample_inputs(&self, now: u64) -> SampleInputs {
        engine::collect_samples(
            self.cores.iter(),
            self.config.cores_per_tile() as usize,
            self.config.num_tiles() as usize,
            &self.banks,
            &self.storage,
            &self.offchip,
            now,
        )
    }

    /// Pushes one sample per series for the window ending at `now`, with
    /// deltas read against `sampler`'s baselines. The baselines are left
    /// untouched — the engine re-baselines at epoch boundaries, while
    /// [`Self::crash_dump`] uses this directly to flush a partial epoch
    /// (zero-length windows are dropped, not clamped).
    pub(crate) fn push_samples(&self, sampler: &Sampler, now: u64) {
        let Some(hooks) = self.obs.as_ref() else {
            return;
        };
        engine::push_samples(hooks, sampler, now, &self.sample_inputs(now));
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The simulation parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Loads `program` into every core's instruction path and resets all
    /// program counters to 0.
    pub fn load_program(&mut self, program: Program) {
        self.program = program;
        for core in &mut self.cores {
            core.pc = 0;
        }
    }

    /// Preloads every tile's I$ with the program (hot-cache measurement
    /// mode, Section VI-A).
    pub fn preload_icaches(&mut self) {
        let words = self.program.len() as u32;
        for icache in &mut self.icaches {
            icache.preload(words);
        }
    }

    /// Restarts all cores at `pc`, clearing the halted state. Register
    /// files and memory contents are preserved, so multi-phase kernels can
    /// pass state between phases. Cores hung by an injected fault stay
    /// parked.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ResumeWithOutstanding`] if a core still has
    /// in-flight transactions (e.g. a request black-holed by a dead F2F
    /// link) — restarting it would corrupt the scoreboard.
    pub fn resume_all(&mut self, pc: u32) -> Result<(), SimError> {
        for (i, core) in self.cores.iter().enumerate() {
            if !core.hung() && core.outstanding() > 0 {
                return Err(SimError::ResumeWithOutstanding {
                    core: GlobalCoreId::new(i as u32),
                    outstanding: core.outstanding(),
                });
            }
        }
        if let Some(hooks) = &self.obs {
            for (core, &track) in self.cores.iter().zip(&hooks.core_tracks) {
                if core.halted() {
                    hooks.obs.spans.end(track, self.cycle);
                }
            }
        }
        for core in &mut self.cores {
            if !core.hung() {
                core.reset_at(pc);
            }
        }
        self.note_external_progress();
        Ok(())
    }

    /// Injects the faults of `plan` into this cluster: stuck banks are
    /// taken out of service by remapping them onto per-tile spares (their
    /// contents migrate), link health and timed events (bit flips, core
    /// hangs) are armed for delivery as the clock reaches them.
    ///
    /// Injecting replaces any previously injected plan.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Remap`] if the spare-bank policy cannot cover
    /// the plan's stuck banks (e.g. two stuck banks reported for the same
    /// physical bank).
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        let mut ctrl = FaultController::new(plan, self.config.num_tiles());
        if let Some(flight) = self.flight_handle() {
            ctrl.attach_flight(flight);
        }
        let num_tiles = self.config.num_tiles();
        let mut per_tile = vec![0u32; num_tiles as usize];
        for &(tile, _) in ctrl.stuck_banks() {
            if let Some(count) = per_tile.get_mut(tile.index()) {
                *count += 1;
            }
        }
        let spares_needed = per_tile.iter().copied().max().unwrap_or(0);
        if spares_needed > 0 {
            self.storage.provision_spares(spares_needed);
            let stuck = ctrl.stuck_banks().to_vec();
            for (tile, bank) in stuck {
                if tile.index() >= num_tiles as usize {
                    continue;
                }
                let spare = self.storage.remap_bank(tile, bank)?;
                ctrl.record_remap(tile, bank, spare);
            }
        }
        self.faults = Some(ctrl);
        Ok(())
    }

    /// Arms the forward-progress watchdog: if no core retires an
    /// instruction and no memory response is delivered for `threshold`
    /// consecutive cycles, [`Cluster::step`] raises [`SimError::Deadlock`]
    /// with a per-core diagnostic snapshot.
    pub fn set_watchdog(&mut self, threshold: u64) {
        self.watchdog = Some(Watchdog::new(threshold, self.cycle));
    }

    /// The accumulated fault report, if a plan was injected.
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.faults.as_ref().map(FaultController::report)
    }

    /// Snapshot of every core's liveness state (used in deadlock
    /// diagnostics). When instruction tracing is enabled, each snapshot
    /// carries the core's last few retired instructions.
    pub fn core_diagnostics(&self) -> Vec<CoreDiagnostic> {
        engine::core_diagnostics_from(self.cores.iter(), self.trace.as_ref())
    }

    /// Watchdog hook for clock jumps outside `step()` (DMA, resume): the
    /// cluster made externally visible progress.
    fn note_external_progress(&mut self) {
        let now = self.cycle;
        if let Some(watchdog) = self.watchdog.as_mut() {
            watchdog.note_progress(now);
        }
    }

    /// Access to a core's state.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: GlobalCoreId) -> &Core {
        &self.cores[core.index()]
    }

    /// Sets a register of one core (for passing kernel arguments).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_reg(&mut self, core: GlobalCoreId, reg: Reg, value: u32) {
        self.cores[core.index()].regs.write(reg, value);
    }

    /// Reads a register of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn reg(&self, core: GlobalCoreId, reg: Reg) -> u32 {
        self.cores[core.index()].regs.read(reg)
    }

    /// Reads an SPM or external word directly (no timing). Latent
    /// single-bit errors are corrected on the fly (without scrubbing —
    /// debug reads leave the stored word untouched).
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped or misaligned addresses, or an
    /// uncorrectable multi-bit error under fault injection.
    pub fn read_spm_word(&self, addr: u32) -> Result<u32, SimError> {
        let word = self.storage.read(addr, MemWidth::Word)?;
        if let Some(faults) = &self.faults {
            if let MemoryRegion::Spm(loc) = self.storage.map().locate(addr & !3) {
                if let Some(mask) = faults.pending_mask(loc) {
                    if mask.count_ones() == 1 {
                        return Ok(word ^ mask);
                    }
                    return Err(SimError::EccUncorrectable { loc, mask });
                }
            }
        }
        Ok(word)
    }

    /// Writes an SPM or external word directly (no timing), clearing any
    /// latent ECC error on the overwritten word.
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped or misaligned addresses.
    pub fn write_spm_word(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        self.storage.write(addr, MemWidth::Word, value)?;
        if let MemoryRegion::Spm(loc) = self.storage.map().locate(addr & !3) {
            if let Some(faults) = self.faults.as_mut() {
                faults.ecc_clear(loc);
            }
        }
        Ok(())
    }

    /// The storage backing the SPM and external memory.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable access to the backing storage (for bulk initialization).
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(Core::halted)
    }

    /// Whether the cluster is fully quiescent: every core halted *and*
    /// every in-flight memory transaction drained. `wfi` does not cancel
    /// outstanding transactions, so a run only ends here.
    pub fn quiescent(&self) -> bool {
        self.all_halted()
            && self.banks.iter().all(|b| b.queue.is_empty())
            && self.responses.iter().all(Vec::is_empty)
            && self.cores.iter().all(|c| c.outstanding() == 0)
    }

    /// Performs a DMA transfer between external memory and the SPM,
    /// advancing simulated time by the bandwidth-limited transfer cost.
    ///
    /// `to_spm` selects the direction. The transfer is modeled as the
    /// paper's idealized memory phase: data moves as whole words and the
    /// cluster is quiescent while it runs.
    ///
    /// # Errors
    ///
    /// Returns an error if any SPM address in the range is unmapped.
    pub fn dma(
        &mut self,
        ext_offset: u64,
        spm_addr: u32,
        bytes: u64,
        to_spm: bool,
    ) -> Result<u64, SimError> {
        debug_assert_eq!(bytes % 4, 0, "dma moves whole words");
        for i in (0..bytes).step_by(4) {
            if to_spm {
                let value = self.storage.read_external_word(ext_offset + i);
                self.storage
                    .write(spm_addr + i as u32, MemWidth::Word, value)?;
            } else {
                let value = self.storage.read(spm_addr + i as u32, MemWidth::Word)?;
                self.storage.write_external_word(ext_offset + i, value);
            }
        }
        if to_spm {
            self.ecc_clear_spm_range(spm_addr, bytes);
        }
        let start = self.cycle;
        let done = self.offchip.schedule(self.cycle, bytes);
        let elapsed = done - self.cycle;
        self.cycle = done;
        self.dma_bytes += bytes;
        self.dma_cycles += elapsed;
        if let Some(hooks) = &self.obs {
            hooks.dma_span("dma", start, done, bytes, to_spm);
        }
        if let Some(flight) = self.flight_handle() {
            flight.record(
                start,
                "dma",
                None,
                format!("dma {bytes} B {} over {elapsed} cycles", dma_dir(to_spm)),
            );
        }
        self.note_external_progress();
        Ok(elapsed)
    }

    /// DMA-transfers a 2D tile between external memory and the SPM: `rows`
    /// rows of `row_bytes` bytes, laid out in external memory with
    /// `ext_stride_bytes` between row starts and packed contiguously in the
    /// SPM starting at `spm_addr`. Charged as a *single* bandwidth-limited
    /// transfer (the paper idealizes off-chip latency).
    ///
    /// # Errors
    ///
    /// Returns an error if any SPM address in the range is unmapped.
    pub fn dma_tile(
        &mut self,
        ext_base: u64,
        ext_stride_bytes: u64,
        spm_addr: u32,
        rows: u32,
        row_bytes: u32,
        to_spm: bool,
    ) -> Result<u64, SimError> {
        self.move_tile(
            ext_base,
            ext_stride_bytes,
            spm_addr,
            rows,
            row_bytes,
            to_spm,
        )?;
        let bytes = rows as u64 * row_bytes as u64;
        let start = self.cycle;
        let done = self.offchip.schedule(self.cycle, bytes);
        let elapsed = done - self.cycle;
        self.cycle = done;
        self.dma_bytes += bytes;
        self.dma_cycles += elapsed;
        if let Some(hooks) = &self.obs {
            hooks.dma_span("dma_tile", start, done, bytes, to_spm);
        }
        if let Some(flight) = self.flight_handle() {
            flight.record(
                start,
                "dma",
                None,
                format!(
                    "dma_tile {bytes} B {} over {elapsed} cycles",
                    dma_dir(to_spm)
                ),
            );
        }
        self.note_external_progress();
        Ok(elapsed)
    }

    /// Starts an *asynchronous* tile DMA: the transfer occupies the
    /// off-chip port (serializing with other transfers) but simulated time
    /// does **not** advance — the cores keep running, which is what makes
    /// double-buffered kernels possible. Returns the completion cycle.
    ///
    /// Data movement is applied immediately; by the double-buffering
    /// contract the program must not touch the destination buffer before
    /// [`Self::advance_to`] the returned cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if any SPM address in the range is unmapped.
    pub fn dma_tile_async(
        &mut self,
        ext_base: u64,
        ext_stride_bytes: u64,
        spm_addr: u32,
        rows: u32,
        row_bytes: u32,
        to_spm: bool,
    ) -> Result<u64, SimError> {
        self.move_tile(
            ext_base,
            ext_stride_bytes,
            spm_addr,
            rows,
            row_bytes,
            to_spm,
        )?;
        let bytes = rows as u64 * row_bytes as u64;
        let done = self.offchip.schedule(self.cycle, bytes);
        self.dma_bytes += bytes;
        if let Some(hooks) = &self.obs {
            // The transfer occupies the port for its serialization window,
            // which may start after `now` if the port is busy.
            let start = done - self.offchip.transfer_cycles(bytes);
            hooks.dma_span("dma_async", start, done, bytes, to_spm);
        }
        if let Some(flight) = self.flight_handle() {
            flight.record(
                self.cycle,
                "dma",
                None,
                format!(
                    "dma_async {bytes} B {} completing at cycle {done}",
                    dma_dir(to_spm)
                ),
            );
        }
        Ok(done)
    }

    /// Advances simulated time to at least `cycle` with the cores idle
    /// (waiting on an asynchronous DMA); the waiting cycles are accounted
    /// as DMA time.
    pub fn advance_to(&mut self, cycle: u64) {
        if cycle > self.cycle {
            if let Some(hooks) = &self.obs {
                hooks.obs.spans.complete(
                    hooks.dma_track,
                    "dma_wait",
                    self.cycle,
                    cycle,
                    Vec::new(),
                );
            }
            self.dma_cycles += cycle - self.cycle;
            self.cycle = cycle;
            self.note_external_progress();
        }
    }

    fn move_tile(
        &mut self,
        ext_base: u64,
        ext_stride_bytes: u64,
        spm_addr: u32,
        rows: u32,
        row_bytes: u32,
        to_spm: bool,
    ) -> Result<(), SimError> {
        debug_assert_eq!(row_bytes % 4, 0);
        for r in 0..rows as u64 {
            let ext_row = ext_base + r * ext_stride_bytes;
            let spm_row = spm_addr + r as u32 * row_bytes;
            for i in (0..row_bytes as u64).step_by(4) {
                if to_spm {
                    let value = self.storage.read_external_word(ext_row + i);
                    self.storage
                        .write(spm_row + i as u32, MemWidth::Word, value)?;
                } else {
                    let value = self.storage.read(spm_row + i as u32, MemWidth::Word)?;
                    self.storage.write_external_word(ext_row + i, value);
                }
            }
            if to_spm {
                self.ecc_clear_spm_range(spm_row, row_bytes as u64);
            }
        }
        Ok(())
    }

    /// Clears latent ECC masks on a freshly (over)written SPM range —
    /// bulk writes leave error-free words behind, exactly like stores.
    fn ecc_clear_spm_range(&mut self, spm_addr: u32, bytes: u64) {
        let latent = self.faults.as_ref().is_some_and(|f| f.has_pending_errors());
        if !latent {
            return;
        }
        for i in (0..bytes).step_by(4) {
            if let MemoryRegion::Spm(loc) = self.storage.map().locate(spm_addr + i as u32) {
                if let Some(faults) = self.faults.as_mut() {
                    faults.ecc_clear(loc);
                }
            }
        }
    }

    /// Advances the cluster by one cycle (always on the sequential
    /// engine; [`Cluster::run`] is the entry point for the parallel one —
    /// both produce bit-identical results).
    ///
    /// # Errors
    ///
    /// Returns an error on fetch or data-access faults, an uncorrectable
    /// ECC error, a dead-link access (under the fail-fast policy), or a
    /// watchdog-detected deadlock.
    #[must_use = "a step can fail with a SimError that must not be ignored"]
    pub fn step(&mut self) -> Result<(), SimError> {
        let (mut ms, mut ph, mut cells) = engine::split(self);
        let mut views: Vec<&mut engine::TileCell<'_>> = cells.iter_mut().collect();
        engine::pre_tick(&mut ms, &mut ph, &mut views)?;
        {
            let ctx = engine::local_ctx(&ms, &ph);
            for cell in views.iter_mut() {
                engine::local_tile(&ctx, cell);
            }
        }
        engine::commit_tick(&mut ms, &mut ph, &mut views)
    }

    /// Runs until every core halts, returning the cycle count at that
    /// point.
    ///
    /// With [`SimParams::threads`]` > 1` (see [`Cluster::set_threads`])
    /// the run advances tile-local state on a host-thread pool with a
    /// sequential, deterministically ordered commit barrier per cycle —
    /// bit-identical to the sequential engine in every observable way
    /// (stats, time-series, fault reports, errors).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the budget is exhausted first, or
    /// any fault raised while stepping.
    #[must_use = "a run can fail with a SimError that must not be ignored"]
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, SimError> {
        let threads = self.effective_workers();
        if threads > 1 && self.quantum_eligible() {
            // Multi-worker run, instrumented or not: the arena-backed
            // quantum engine, bit-identical to `step` at any worker
            // count. Observability (counters, time series, flight ring,
            // tracing, watchdog) rides the shard-local observation lanes
            // and merges deterministically at quantum stops. With one
            // effective worker the plain sequential loop below is the
            // faster engine (no mailbox/lockstep bookkeeping), so the
            // quantum path is reserved for real parallelism.
            return engine::run_quantum(self, max_cycles, threads);
        }
        if threads > 1 {
            return engine::run_parallel(self, max_cycles, threads);
        }
        let deadline = self.cycle + max_cycles;
        while !self.quiescent() {
            if self.cycle >= deadline {
                return Err(SimError::Timeout { cycles: max_cycles });
            }
            self.step()?;
        }
        Ok(self.cycle)
    }

    /// Whether a multi-worker [`Cluster::run`] may take the quantum
    /// engine. Fault plans (timed faults, ECC, link state) and spare-bank
    /// remaps hook the per-tick sequential phases the quantum engine
    /// batches away, so they fall back to the phased-tick engine; every
    /// observability facility rides the quantum engine's shard-local
    /// observation lanes.
    fn quantum_eligible(&self) -> bool {
        self.faults.is_none() && self.storage.spares_per_tile() == 0
    }

    /// Which engine [`Cluster::run`] will dispatch to right now, plus the
    /// reason — the explicit record of what used to be a silent
    /// fast-path downgrade. Written into `BENCH_repro.json` and
    /// `crashdump.json` (string-valued, so engine differences between a
    /// sequential and a parallel leg never trip the numeric comparator).
    pub fn engine_selection(&self) -> EngineSelection {
        select_engine(
            self.effective_workers(),
            self.faults.is_some(),
            self.storage.spares_per_tile() > 0,
        )
    }

    /// Total reserved capacity (entries) across the quantum engine's
    /// preallocated buffers. Exposed for the arena-invariant tests, which
    /// assert the footprint stops growing once a workload reaches steady
    /// state.
    #[doc(hidden)]
    pub fn engine_arena_footprint(&self) -> u64 {
        self.quantum.footprint()
    }

    /// Collects a snapshot of all statistics.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            cycles: self.cycle,
            cores: self.cores.iter().map(|c| c.stats).collect(),
            banks: self.banks.iter().map(|b| b.stats).collect(),
            dma_bytes: self.dma_bytes,
            dma_cycles: self.dma_cycles,
        }
    }

    /// Enables instruction tracing, keeping the most recent `capacity`
    /// retired instructions across all cores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Disables tracing, returning the trace collected so far.
    pub fn disable_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// The instruction trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The topology helper bound to this cluster's configuration.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The off-chip port (bandwidth, busy window, transfer totals).
    pub fn offchip(&self) -> &OffchipPort {
        &self.offchip
    }

    /// Builds the self-contained `crashdump.json` document for a run that
    /// died with `err`: the error (message + stable kind), per-core
    /// liveness snapshots (with recent instructions when tracing was on),
    /// the final approach to the failure as a cycle-ordered event window
    /// (flight ring merged with trace retires), and — when an [`Obs`]
    /// handle is attached — the metrics snapshot, the time-series, and a
    /// Chrome Trace document (spans plus counter tracks) loadable in
    /// Perfetto. Spans still open at crash time are closed at the current
    /// cycle so they appear in the trace.
    ///
    /// Every part degrades gracefully: without tracing/obs/faults the
    /// corresponding sections are empty or `null`, and the dump always
    /// re-parses via [`Json::parse`].
    pub fn crash_dump(&self, err: &SimError) -> Json {
        let mut events: Vec<(u64, usize, Json)> = Vec::new();
        let mut dropped: u64 = 0;
        if let Some(hooks) = &self.obs {
            for event in hooks.obs.flight.events() {
                events.push((event.cycle, events.len(), event.to_json()));
            }
            dropped += hooks.obs.flight.dropped();
        }
        if let Some(trace) = &self.trace {
            for entry in trace.entries() {
                events.push((
                    entry.cycle,
                    events.len(),
                    Json::obj([
                        ("cycle", Json::Int(entry.cycle as i64)),
                        ("category", Json::str("retire")),
                        ("core", Json::Int(entry.core.index() as i64)),
                        (
                            "message",
                            Json::Str(format!("{:#010x}  {}", entry.pc, entry.instr)),
                        ),
                    ]),
                ));
            }
            dropped += trace.dropped();
        }
        events.sort_by_key(|&(cycle, seq, _)| (cycle, seq));

        // Flush the in-flight sampling epoch so a crash landing between
        // window boundaries (or before the first one) still exports its
        // final counter values. A zero-length window (crash exactly at an
        // epoch boundary) is dropped by `push_samples` itself.
        if let Some(sampler) = &self.sampler {
            self.push_samples(sampler, self.cycle);
        }

        let (metrics, timeseries, chrome) = match &self.obs {
            Some(hooks) => {
                hooks.obs.spans.close_all(self.cycle);
                (
                    hooks.obs.metrics.snapshot().to_json(),
                    hooks.obs.series.to_json(),
                    chrome_trace_with_counters(&hooks.obs.spans, Some(&hooks.obs.series)),
                )
            }
            None => (Json::Null, Json::Null, Json::Null),
        };

        Json::obj([
            ("schema", Json::str("mempool-crashdump/v1")),
            (
                "error",
                Json::obj([
                    ("kind", Json::str(err.kind())),
                    ("message", Json::Str(err.to_string())),
                ]),
            ),
            ("cycle", Json::Int(self.cycle as i64)),
            ("engine", self.engine_selection().to_json()),
            (
                "liveness",
                Json::Arr(
                    self.core_diagnostics()
                        .iter()
                        .map(CoreDiagnostic::to_json)
                        .collect(),
                ),
            ),
            (
                "events",
                Json::Arr(events.into_iter().map(|(_, _, e)| e).collect()),
            ),
            ("dropped_events", Json::Int(dropped as i64)),
            (
                "fault_report",
                self.fault_report()
                    .map_or(Json::Null, |report| report.to_json()),
            ),
            ("metrics", metrics),
            ("timeseries", timeseries),
            ("trace", chrome),
        ])
    }
}

/// Which execution engine a run dispatches to, with the reason — see
/// [`Cluster::engine_selection`] and [`planned_engine`]. Both fields are
/// short stable strings meant for artifacts and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSelection {
    /// `"quantum"` (lockstep shard quanta) or `"step"` (per-tick phased
    /// commit, sequential or thread-pooled).
    pub engine: &'static str,
    /// Why that engine was (or will be) chosen.
    pub reason: &'static str,
}

impl EngineSelection {
    /// `{"name": ..., "reason": ...}` — string-valued on purpose, so the
    /// regression comparator (which diffs numeric leaves only) ignores
    /// engine differences between artifact legs.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.engine)),
            ("reason", Json::str(self.reason)),
        ])
    }
}

/// The engine-dispatch decision as a pure function of its inputs.
pub(crate) fn select_engine(workers: usize, faulted: bool, spares: bool) -> EngineSelection {
    if workers <= 1 {
        EngineSelection {
            engine: "step",
            reason: "single effective worker: the sequential step loop is the faster engine",
        }
    } else if faulted {
        EngineSelection {
            engine: "step",
            reason: "fault plan injected: fault/ECC/link hooks run in the per-tick phases",
        }
    } else if spares {
        EngineSelection {
            engine: "step",
            reason: "spare-bank remaps active: bank indirection resolves in the per-tick phases",
        }
    } else {
        EngineSelection {
            engine: "quantum",
            reason:
                "parallel run: tile shards in lockstep quanta with shard-local observation lanes",
        }
    }
}

/// The engine a run configured with `threads` host threads (and a fault
/// plan or not) will dispatch to on this host — [`Cluster::engine_selection`]
/// without needing a constructed cluster, for artifact writers that
/// record the choice up front. Applies the same host-parallelism clamp
/// as [`Cluster::effective_workers`]; assumes no spare banks and at
/// least `threads` tiles.
pub fn planned_engine(threads: usize, faulted: bool) -> EngineSelection {
    let workers = threads.max(1).min(engine::host_parallelism());
    select_engine(workers, faulted, false)
}

/// How many of a core's most recent retired instructions a
/// [`CoreDiagnostic`] carries (when tracing is enabled).
pub(crate) const DIAGNOSTIC_RECENT_WINDOW: usize = 8;

/// Splits a zero-load latency into request and response halves around the
/// single bank-service cycle.
pub(crate) fn latency_split(latency: &LatencyModel, class: AccessClass) -> (u32, u32) {
    let total = latency.cycles(class);
    let request = (total - 1) / 2;
    (request, total - 1 - request)
}

/// Direction tag used in DMA flight-event messages.
fn dma_dir(to_spm: bool) -> &'static str {
    if to_spm {
        "to_spm"
    } else {
        "to_ext"
    }
}

/// Address an instruction is about to access, computed *without* side
/// effects (post-increments are not applied) — used for remote-port
/// arbitration before the instruction actually issues.
pub(crate) fn mem_probe_addr(
    instr: mempool_isa::Instr,
    regs: &mempool_isa::RegFile,
) -> Option<u32> {
    use mempool_isa::Instr;
    match instr {
        Instr::Load { rs1, offset, .. } | Instr::Store { rs1, offset, .. } => {
            Some(regs.read(rs1).wrapping_add(offset as u32))
        }
        Instr::Amo { rs1, .. } | Instr::LwPostInc { rs1, .. } | Instr::SwPostInc { rs1, .. } => {
            Some(regs.read(rs1))
        }
        _ => None,
    }
}

/// Applies load sign-extension for sub-word loads.
pub(crate) fn sign_adjust(kind: MemAccessKind, raw: u32) -> u32 {
    match kind {
        MemAccessKind::Load {
            width,
            signed: true,
            ..
        } => match width {
            MemWidth::Byte => raw as u8 as i8 as i32 as u32,
            MemWidth::Half => raw as u16 as i16 as i32 as u32,
            MemWidth::Word => raw,
        },
        _ => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::SpmCapacity;
    use mempool_fault::DeadLinkPolicy;

    fn tiny_config() -> ClusterConfig {
        ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(1)
            .cores_per_tile(1)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap()
    }

    fn run_program(cfg: ClusterConfig, src: &str) -> Cluster {
        let mut cluster = Cluster::new(cfg, SimParams::default());
        cluster.load_program(Program::assemble(src).unwrap());
        cluster.preload_icaches();
        cluster.run(1_000_000).expect("simulation failed");
        cluster
    }

    #[test]
    fn single_core_computes_correctly() {
        let cluster = run_program(
            tiny_config(),
            r#"
                li   a0, 0
                li   a1, 1
                li   a2, 101
            loop:
                add  a0, a0, a1
                addi a1, a1, 1
                blt  a1, a2, loop
                li   t0, 0
                sw   a0, 0(t0)
                wfi
            "#,
        );
        assert_eq!(cluster.read_spm_word(0).unwrap(), 5050);
    }

    #[test]
    fn tile_local_load_latency_is_one_cycle() {
        // Dependent chain: lw then immediate use. Measure against a version
        // with a nop between them; both should take the same time because
        // one cycle of latency is hidden by the next instruction.
        let mut c1 = Cluster::new(tiny_config(), SimParams::default());
        c1.load_program(Program::assemble("li t0, 0\nlw a0, 0(t0)\nadd a1, a0, a0\nwfi").unwrap());
        c1.preload_icaches();
        let cycles_dependent = c1.run(1000).unwrap();

        let mut c2 = Cluster::new(tiny_config(), SimParams::default());
        c2.load_program(
            Program::assemble("li t0, 0\nlw a0, 0(t0)\nadd a1, zero, zero\nwfi").unwrap(),
        );
        c2.preload_icaches();
        let cycles_independent = c2.run(1000).unwrap();
        assert_eq!(
            cycles_dependent, cycles_independent,
            "a 1-cycle load-use latency must be fully hidden by the pipeline"
        );
        // And no scoreboard stalls should have occurred.
        assert_eq!(c1.stats().cores[0].stall_scoreboard, 0);
    }

    #[test]
    fn scoreboard_allows_independent_work_under_load() {
        // A load followed by 3 independent adds: the adds issue while the
        // load is outstanding.
        let cluster = run_program(
            tiny_config(),
            r#"
                li t0, 0
                lw a0, 0(t0)
                addi a1, zero, 1
                addi a2, zero, 2
                addi a3, zero, 3
                add  a4, a0, a1
                wfi
            "#,
        );
        assert_eq!(cluster.stats().cores[0].stall_scoreboard, 0);
    }

    #[test]
    fn bank_conflicts_are_detected() {
        // Two cores hammer the same bank (same address).
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(1)
            .cores_per_tile(4)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap();
        let cluster = run_program(
            cfg,
            r#"
                li   t0, 0
                li   t1, 32
            loop:
                lw   a0, 0(t0)
                addi t1, t1, -1
                bnez t1, loop
                wfi
            "#,
        );
        assert!(
            cluster.stats().total_conflicts() > 0,
            "four cores on one bank must conflict"
        );
    }

    #[test]
    fn interleaving_spreads_streaming_accesses() {
        // One core streams sequential interleaved words: conflict-free.
        let cfg = tiny_config();
        let base = {
            let cluster = Cluster::new(cfg.clone(), SimParams::default());
            cluster.storage().map().interleaved_base()
        };
        let cluster = run_program(
            cfg,
            &format!(
                r#"
                li   t0, {base}
                li   t1, 16
            loop:
                p.lw a0, 4(t0!)
                addi t1, t1, -1
                bnez t1, loop
                wfi
                "#
            ),
        );
        assert_eq!(cluster.stats().total_conflicts(), 0);
        let [local, _, _] = cluster.stats().accesses_by_class();
        assert_eq!(local, 16);
    }

    #[test]
    fn remote_accesses_classified_and_slower() {
        let cfg = ClusterConfig::builder()
            .groups(2)
            .tiles_per_group(1)
            .cores_per_tile(1)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap();
        // Tile 1's sequential region starts at seq_bytes_per_tile.
        let remote_addr = {
            let cluster = Cluster::new(cfg.clone(), SimParams::default());
            cluster.storage().map().seq_addr(mempool_arch::TileId(1), 0)
        };
        // Only hart 0 performs the access; the other core parks at `wfi` so
        // it cannot perturb the measurement.
        let body = |addr: u32| {
            format!(
                r#"
                    csrr t1, mhartid
                    bnez t1, done
                    li   t0, {addr}
                    lw   a0, 0(t0)
                    add  a1, a0, a0
                done:
                    wfi
                "#
            )
        };
        let src_remote = body(remote_addr);
        let src_local = body(0);

        let mut remote = Cluster::new(cfg.clone(), SimParams::default());
        remote.load_program(Program::assemble(&src_remote).unwrap());
        remote.preload_icaches();
        let remote_cycles = remote.run(1000).unwrap();

        let mut local = Cluster::new(cfg, SimParams::default());
        local.load_program(Program::assemble(&src_local).unwrap());
        local.preload_icaches();
        let local_cycles = local.run(1000).unwrap();

        assert_eq!(
            remote_cycles - local_cycles,
            4,
            "remote (5-cycle) vs local (1-cycle) difference must be 4 stall cycles"
        );
        let [_, _, remote_count] = remote.stats().accesses_by_class();
        assert_eq!(remote_count, 1);
    }

    #[test]
    fn amo_serializes_atomically_across_cores() {
        // All cores atomically increment a counter 10 times.
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap();
        let num_cores = cfg.num_cores();
        let cluster = run_program(
            cfg,
            r#"
                li   t0, 0
                li   t1, 10
                li   t2, 1
            loop:
                amoadd.w a0, t2, (t0)
                addi t1, t1, -1
                bnez t1, loop
                wfi
            "#,
        );
        assert_eq!(cluster.read_spm_word(0).unwrap(), num_cores * 10);
    }

    #[test]
    fn external_accesses_go_through_the_offchip_port() {
        let base = mempool_arch::AddressMap::EXTERNAL_BASE;
        let cfg = tiny_config();
        let mut cluster = Cluster::new(cfg, SimParams::default());
        cluster.storage_mut().write_external_word(0, 1234);
        cluster
            .load_program(Program::assemble(&format!("li t0, {base}\nlw a0, 0(t0)\nwfi")).unwrap());
        cluster.preload_icaches();
        let cycles = cluster.run(10_000).unwrap();
        assert_eq!(
            cluster.reg(GlobalCoreId::new(0), "a0".parse().unwrap()),
            1234
        );
        assert!(
            cycles > SimParams::default().offchip_latency as u64,
            "external load must pay off-chip latency"
        );
    }

    #[test]
    fn dma_costs_match_bandwidth_model() {
        let cfg = tiny_config();
        let mut cluster = Cluster::new(cfg, SimParams::default());
        for i in 0..64u64 {
            cluster.storage_mut().write_external_word(i * 4, i as u32);
        }
        let bytes = 256;
        let elapsed = cluster.dma(0, 0, bytes, true).unwrap();
        let expected = SimParams::default().offchip_latency as u64
            + bytes / SimParams::default().offchip_bytes_per_cycle as u64;
        assert_eq!(elapsed, expected);
        assert_eq!(cluster.read_spm_word(4 * 10).unwrap(), 10);
        // Round trip back out.
        cluster.write_spm_word(0, 999).unwrap();
        cluster.dma(4096, 0, 4, false).unwrap();
        assert_eq!(cluster.storage().read_external_word(4096), 999);
    }

    #[test]
    fn timeout_is_reported() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.load_program(Program::assemble("loop: j loop").unwrap());
        cluster.preload_icaches();
        assert_eq!(
            cluster.run(100).unwrap_err(),
            SimError::Timeout { cycles: 100 }
        );
    }

    #[test]
    fn missing_program_is_an_error() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        assert_eq!(cluster.step().unwrap_err(), SimError::NoProgram);
    }

    #[test]
    fn cold_icache_charges_misses() {
        let mut cold = Cluster::new(tiny_config(), SimParams::default());
        cold.load_program(Program::assemble("nop\nnop\nnop\nwfi").unwrap());
        let cold_cycles = cold.run(10_000).unwrap();

        let mut hot = Cluster::new(tiny_config(), SimParams::default());
        hot.load_program(Program::assemble("nop\nnop\nnop\nwfi").unwrap());
        hot.preload_icaches();
        let hot_cycles = hot.run(10_000).unwrap();
        assert!(cold_cycles > hot_cycles);
        assert!(cold.stats().cores[0].stall_icache > 0);
        assert_eq!(hot.stats().cores[0].stall_icache, 0);
    }

    #[test]
    fn full_cluster_instantiates() {
        let cfg = ClusterConfig::with_capacity(SpmCapacity::MiB1);
        let cluster = Cluster::new(cfg, SimParams::default());
        assert_eq!(cluster.config().num_cores(), 256);
    }

    #[test]
    fn network_traffic_is_attributed_to_the_right_butterflies() {
        // 2x2 groups of one tile each; hart 0 (group 0) touches a bank in
        // every group: local network unused (same tile), east for group 1,
        // north for group 2, northeast for group 3.
        let cfg = ClusterConfig::builder()
            .groups(4)
            .tiles_per_group(1)
            .cores_per_tile(1)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap();
        let probe = Cluster::new(cfg.clone(), SimParams::default());
        let addr = |tile: u32| {
            probe
                .storage()
                .map()
                .seq_addr(mempool_arch::TileId(tile), 0)
        };
        let src = format!(
            r#"
                csrr t1, mhartid
                bnez t1, done
                li   t0, {a1}
                lw   a1, 0(t0)
                li   t0, {a2}
                lw   a2, 0(t0)
                li   t0, {a3}
                lw   a3, 0(t0)
            done:
                wfi
            "#,
            a1 = addr(1),
            a2 = addr(2),
            a3 = addr(3),
        );
        let mut cluster = Cluster::new(cfg, SimParams::default());
        cluster.load_program(Program::assemble(&src).unwrap());
        cluster.preload_icaches();
        cluster.run(10_000).unwrap();
        let nets = cluster.stats().accesses_by_network();
        // [local, north, northeast, east]
        assert_eq!(nets, [0, 1, 1, 1], "network attribution {nets:?}");
    }

    #[test]
    fn remote_ports_throttle_off_tile_traffic() {
        // Four cores of tile 0 hammer tile 1's banks every cycle. With
        // four remote ports they proceed in parallel; with one port they
        // serialize at issue.
        let run_with_ports = |ports: u32| {
            let cfg = ClusterConfig::builder()
                .groups(1)
                .tiles_per_group(4)
                .cores_per_tile(4)
                .banks_per_tile(4)
                .bank_words(64)
                .remote_ports_per_tile(ports)
                .build()
                .unwrap();
            let remote_base = {
                let probe = Cluster::new(cfg.clone(), SimParams::default());
                probe.storage().map().seq_addr(mempool_arch::TileId(1), 0)
            };
            let src = format!(
                r#"
                    csrr t1, mhartid
                    li   t2, 4
                    bge  t1, t2, done      # only tile 0's cores participate
                    li   t0, {remote_base}
                    slli t3, t1, 2
                    add  t0, t0, t3        # distinct banks: no bank conflicts
                    li   t4, 32
                loop:
                    lw   a0, 0(t0)
                    add  a1, a0, a0        # force the latency to be visible
                    addi t4, t4, -1
                    bnez t4, loop
                done:
                    wfi
                "#
            );
            let mut cluster = Cluster::new(cfg, SimParams::default());
            cluster.load_program(Program::assemble(&src).unwrap());
            cluster.preload_icaches();
            let cycles = cluster.run(1_000_000).unwrap();
            let stalls: u64 = cluster
                .stats()
                .cores
                .iter()
                .map(|c| c.stall_structural)
                .sum();
            (cycles, stalls)
        };
        let (wide_cycles, wide_stalls) = run_with_ports(4);
        let (narrow_cycles, narrow_stalls) = run_with_ports(1);
        assert!(
            narrow_stalls > wide_stalls,
            "1 port must stall more ({narrow_stalls} vs {wide_stalls})"
        );
        assert!(
            narrow_cycles > wide_cycles,
            "1 port must be slower ({narrow_cycles} vs {wide_cycles})"
        );
    }

    #[test]
    fn trace_records_retired_instructions_in_order() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.load_program(Program::assemble("li a0, 1\nli a1, 2\nadd a2, a0, a1\nwfi").unwrap());
        cluster.preload_icaches();
        cluster.enable_trace(16);
        cluster.run(1000).unwrap();
        let trace = cluster.trace().expect("tracing enabled");
        assert_eq!(trace.len(), 4);
        let pcs: Vec<u32> = trace.entries().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0, 4, 8, 12]);
        let mut cycles: Vec<u64> = trace.entries().map(|e| e.cycle).collect();
        let sorted = {
            let mut s = cycles.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(cycles, sorted, "trace must be in issue order");
        cycles.dedup();
        assert_eq!(
            cycles.len(),
            4,
            "single-issue core: one instruction per cycle"
        );
        let text = trace.to_string();
        assert!(text.contains("add a2, a0, a1"));
        // Disabling returns the buffer and stops recording.
        let taken = cluster.disable_trace().unwrap();
        assert_eq!(taken.len(), 4);
        assert!(cluster.trace().is_none());
    }

    #[test]
    fn async_dma_overlaps_with_compute() {
        // Double-buffering contract: an async tile DMA occupies the
        // off-chip port while the cores keep computing, so the total run
        // is shorter than the sum of the two phases.
        let busy_loop = r#"
            li   t1, 2000
        loop:
            addi t1, t1, -1
            bnez t1, loop
            wfi
        "#;
        let bytes = 64u64 * 16;

        // Serial reference: DMA first (cores idle), then compute.
        let mut serial = Cluster::new(tiny_config(), SimParams::default());
        serial.load_program(Program::assemble(busy_loop).unwrap());
        serial.preload_icaches();
        let dma_cycles = serial.dma(0, 0, bytes, true).unwrap();
        let serial_total = serial.run(1_000_000).unwrap();

        // Overlapped: the same DMA started asynchronously.
        let mut overlap = Cluster::new(tiny_config(), SimParams::default());
        overlap.load_program(Program::assemble(busy_loop).unwrap());
        overlap.preload_icaches();
        let done = overlap.dma_tile_async(0, 64, 0, 16, 64, true).unwrap();
        assert_eq!(
            done,
            overlap.offchip().transfer_cycles(bytes),
            "async DMA on an idle port completes after the pure transfer cost"
        );
        overlap.run(1_000_000).unwrap();
        overlap.advance_to(done);
        let overlap_total = overlap.cycle();

        assert!(dma_cycles > 0);
        assert!(
            overlap_total < serial_total,
            "overlap ({overlap_total}) must beat serial ({serial_total})"
        );
        assert_eq!(
            overlap_total + dma_cycles,
            serial_total,
            "the compute phase fully hides the transfer"
        );
        // The port's own accounting agrees with the schedule.
        assert_eq!(overlap.offchip().total_bytes(), bytes);
        assert_eq!(overlap.offchip().busy_until(), done);
        assert_eq!(overlap.stats().dma_bytes, bytes);
    }

    #[test]
    fn double_buffered_sequence_overlaps_both_transfers() {
        // Two async DMAs back to back serialize on the port but still
        // overlap compute; total cycles < sum of phases.
        let busy_loop = r#"
            li   t1, 4000
        loop:
            addi t1, t1, -1
            bnez t1, loop
            wfi
        "#;
        let bytes = 64u64 * 8;

        // Compute-only reference: same program, no DMA.
        let compute_only = {
            let mut c = Cluster::new(tiny_config(), SimParams::default());
            c.load_program(Program::assemble(busy_loop).unwrap());
            c.preload_icaches();
            c.run(1_000_000).unwrap()
        };

        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.load_program(Program::assemble(busy_loop).unwrap());
        cluster.preload_icaches();
        let first = cluster.dma_tile_async(0, 64, 0, 8, 64, true).unwrap();
        let second = cluster.dma_tile_async(512, 64, 512, 8, 64, true).unwrap();
        assert!(second > first, "transfers serialize on the single port");
        assert_eq!(
            second - first,
            cluster.offchip().transfer_cycles(bytes),
            "the second transfer queues behind the first"
        );
        cluster.run(1_000_000).unwrap();
        cluster.advance_to(second);
        let total = cluster.cycle();
        let phase_sum = compute_only + 2 * cluster.offchip().transfer_cycles(bytes);
        assert!(
            total < phase_sum,
            "total {total} must be less than the sum of phases {phase_sum}"
        );
        assert_eq!(total, compute_only, "both transfers hide under compute");
        assert_eq!(cluster.offchip().total_bytes(), 2 * bytes);
        assert_eq!(cluster.offchip().busy_until(), second);
    }

    #[test]
    fn attribution_buckets_sum_to_total_cycles() {
        // Exercise every bucket: cold I$ (fetch stalls), taken branches,
        // bank conflicts (scoreboard + structural pressure), a barrier-like
        // wfi tail, and a synchronous DMA (off-chip wait).
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap();
        let (cores_per_tile, banks_per_tile) = (cfg.cores_per_tile(), cfg.banks_per_tile());
        let mut cluster = Cluster::new(cfg, SimParams::default());
        cluster.load_program(
            Program::assemble(
                r#"
                    li   t0, 0
                    li   t1, 32
                loop:
                    lw   a0, 0(t0)
                    add  a1, a0, a0
                    addi t1, t1, -1
                    bnez t1, loop
                    wfi
                "#,
            )
            .unwrap(),
        );
        // Cold I$: misses charged; synchronous DMA: off-chip wait.
        cluster.dma(0, 0, 256, true).unwrap();
        cluster.run(1_000_000).unwrap();
        let stats = cluster.stats();
        let report = stats.attribution(cores_per_tile, banks_per_tile);
        assert_eq!(report.cycles, stats.cycles);
        for (i, core) in report.cores.iter().enumerate() {
            assert_eq!(
                core.total(),
                report.cycles,
                "core {i} buckets must sum to total cycles"
            );
        }
        assert_eq!(
            report.cluster.total(),
            report.cycles * stats.cores.len() as u64
        );
        // The DMA advanced the clock without stepping cores: every core's
        // off-chip bucket is exactly that window.
        assert!(report.cores.iter().all(|c| c.offchip == stats.dma_cycles));
        // And the heatmap carries the same conflicts as the raw stats.
        let heat_total: u64 = report.heatmap.rows.iter().flatten().sum();
        assert_eq!(heat_total, stats.total_conflicts());
    }

    #[test]
    fn attribution_without_dma_has_no_offchip_residual() {
        // With no DMA, the exhaustive accounting leaves nothing over:
        // every cycle of every core lands in a named bucket.
        let cluster = run_program(
            tiny_config(),
            r#"
                li   t0, 0
                li   t1, 8
            loop:
                lw   a0, 0(t0)
                add  a1, a0, a0
                addi t1, t1, -1
                bnez t1, loop
                wfi
            "#,
        );
        let stats = cluster.stats();
        let report = stats.attribution(1, 4);
        assert_eq!(report.cores[0].offchip, 0, "no DMA ran: zero residual");
        assert_eq!(report.cores[0].total(), report.cycles);
    }

    #[test]
    fn obs_hooks_record_dma_and_wfi_spans_and_conflict_metrics() {
        use mempool_obs::Obs;
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(1)
            .cores_per_tile(4)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap();
        let obs = Obs::new();
        let mut cluster = Cluster::new(cfg, SimParams::default());
        cluster.attach_obs(&obs, "test-run");
        cluster.load_program(
            Program::assemble(
                r#"
                    li   t0, 0
                    li   t1, 16
                loop:
                    lw   a0, 0(t0)
                    addi t1, t1, -1
                    bnez t1, loop
                    wfi
                "#,
            )
            .unwrap(),
        );
        cluster.preload_icaches();
        let dma_elapsed = cluster.dma(0, 0, 128, true).unwrap();
        cluster.run(1_000_000).unwrap();
        let stats = cluster.stats();
        cluster.detach_obs();

        assert_eq!(obs.spans.open_count(), 0, "detach closes wfi spans");
        assert_eq!(obs.spans.total_cycles("dma"), dma_elapsed);
        let wfi_spans: Vec<_> = obs
            .spans
            .spans()
            .into_iter()
            .filter(|s| s.name == "wfi")
            .collect();
        assert_eq!(wfi_spans.len(), 4, "one wfi span per core");
        assert!(wfi_spans.iter().all(|s| s.end == stats.cycles));

        let snapshot = obs.metrics.snapshot();
        let value = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(value("sim_dma_bytes_total"), 128);
        assert_eq!(value("sim_dma_transfers_total"), 1);
        assert_eq!(
            value("sim_bank_conflict_cycles_total"),
            stats.total_conflicts()
        );
        assert_eq!(
            snapshot.counters[0].labels,
            vec![("run".to_string(), "test-run".to_string())]
        );
    }

    #[test]
    fn resume_preserves_registers_and_memory() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.load_program(
            Program::assemble(
                r#"
                    li   a0, 7
                    wfi
                phase2:
                    addi a0, a0, 1
                    li   t0, 0
                    sw   a0, 0(t0)
                    wfi
                "#,
            )
            .unwrap(),
        );
        cluster.preload_icaches();
        cluster.run(1000).unwrap();
        let phase2 = 8; // pc of `phase2` (li expands to one instruction)
        cluster.resume_all(phase2).unwrap();
        assert!(!cluster.all_halted());
        cluster.run(1000).unwrap();
        assert_eq!(cluster.read_spm_word(0).unwrap(), 8);
    }

    // ----- fault injection, watchdog, and graceful degradation -----

    use mempool_arch::BankId;
    use mempool_fault::{FaultConfig, FaultEvent};

    /// First word-aligned address that `locate`s into the given bank of
    /// tile 0.
    fn addr_in_bank(cluster: &Cluster, bank: u32) -> (u32, BankLocation) {
        for addr in (0..4096u32).step_by(4) {
            if let MemoryRegion::Spm(loc) = cluster.storage().map().locate(addr) {
                if loc.tile == TileId(0) && loc.bank == BankId(bank) {
                    return (addr, loc);
                }
            }
        }
        panic!("no address maps to tile 0 bank {bank}");
    }

    #[test]
    fn stuck_bank_is_remapped_and_results_stay_correct() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        let (addr, loc) = addr_in_bank(&cluster, 1);
        cluster.write_spm_word(addr, 77).unwrap();

        let mut plan = FaultPlan::new(1);
        plan.push(FaultEvent::StuckBank {
            tile: TileId(0),
            bank: BankId(1),
        });
        cluster.inject_faults(&plan).unwrap();
        // The faulty physical array can rot arbitrarily: the logical bank
        // now lives on the spare, so the corruption is invisible.
        cluster.storage_mut().write_physical(loc, 0xDEAD_BEEF);
        assert_eq!(cluster.read_spm_word(addr).unwrap(), 77);

        cluster.load_program(
            Program::assemble(&format!(
                "li t0, {addr}\nlw a0, 0(t0)\naddi a0, a0, 1\nli t1, 0\nsw a0, 0(t1)\nwfi"
            ))
            .unwrap(),
        );
        cluster.preload_icaches();
        cluster.run(10_000).unwrap();
        assert_eq!(cluster.read_spm_word(0).unwrap(), 78);

        let report = cluster.fault_report().unwrap();
        assert_eq!(report.stuck_banks, 1);
        assert_eq!(report.remapped.len(), 1);
        assert_eq!(report.remapped[0].from_bank, 1);
        assert!(
            report.remapped[0].to_bank >= cluster.config().banks_per_tile(),
            "the spare lives outside the addressable geometry"
        );
    }

    #[test]
    fn single_bit_flip_is_corrected_counted_and_charged() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.write_spm_word(0, 123).unwrap();
        let MemoryRegion::Spm(loc) = cluster.storage().map().locate(0) else {
            panic!("address 0 must be SPM");
        };
        let mut plan = FaultPlan::new(2);
        plan.push(FaultEvent::TransientFlip {
            cycle: 0,
            loc,
            mask: 1 << 7,
        });
        cluster.inject_faults(&plan).unwrap();
        cluster.load_program(
            Program::assemble("li t0, 0\nlw a0, 0(t0)\naddi a0, a0, 1\nsw a0, 4(t0)\nwfi").unwrap(),
        );
        cluster.preload_icaches();
        cluster.run(10_000).unwrap();
        // SEC-DED corrected the load: the program saw 123, not 123^0x80.
        assert_eq!(cluster.read_spm_word(4).unwrap(), 124);
        // The scrub repaired storage in place.
        assert_eq!(cluster.read_spm_word(0).unwrap(), 123);
        let stats = cluster.stats();
        assert_eq!(
            stats.cores[0].stall_ecc,
            SimParams::default().ecc_correction_penalty as u64
        );
        let report = cluster.fault_report().unwrap();
        assert_eq!(report.ecc_corrected, 1);
        assert_eq!(report.ecc_pending, 0, "scrubbed: no latent errors remain");
    }

    #[test]
    fn double_bit_error_raises_a_typed_uncorrectable() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        let MemoryRegion::Spm(loc) = cluster.storage().map().locate(0) else {
            panic!("address 0 must be SPM");
        };
        let mut plan = FaultPlan::new(3);
        for bit in [3u32, 19] {
            plan.push(FaultEvent::TransientFlip {
                cycle: 0,
                loc,
                mask: 1 << bit,
            });
        }
        cluster.inject_faults(&plan).unwrap();
        cluster.load_program(Program::assemble("li t0, 0\nlw a0, 0(t0)\nwfi").unwrap());
        cluster.preload_icaches();
        let err = cluster.run(10_000).unwrap_err();
        assert_eq!(
            err,
            SimError::EccUncorrectable {
                loc,
                mask: (1 << 3) | (1 << 19),
            }
        );
    }

    fn four_tile_config() -> ClusterConfig {
        ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(1)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .unwrap()
    }

    #[test]
    fn dead_link_fails_fast_under_the_error_policy() {
        let cfg = four_tile_config();
        let remote = {
            let probe = Cluster::new(cfg.clone(), SimParams::default());
            probe.storage().map().seq_addr(TileId(1), 0)
        };
        let mut cluster = Cluster::new(cfg, SimParams::default());
        let mut plan = FaultPlan::new(4);
        plan.push(FaultEvent::LinkDead { tile: TileId(1) });
        cluster.inject_faults(&plan).unwrap();
        cluster.load_program(
            Program::assemble(&format!(
                r#"
                    csrr t1, mhartid
                    bnez t1, done
                    li   t0, {remote}
                    lw   a0, 0(t0)
                done:
                    wfi
                "#
            ))
            .unwrap(),
        );
        cluster.preload_icaches();
        assert_eq!(
            cluster.run(10_000).unwrap_err(),
            SimError::LinkDead { tile: TileId(1) }
        );
    }

    #[test]
    fn black_holed_request_is_caught_by_the_watchdog() {
        let cfg = four_tile_config();
        let remote = {
            let probe = Cluster::new(cfg.clone(), SimParams::default());
            probe.storage().map().seq_addr(TileId(1), 0)
        };
        let mut cluster = Cluster::new(cfg, SimParams::default());
        let mut plan = FaultPlan::new(5).with_dead_link_policy(DeadLinkPolicy::BlackHole);
        plan.push(FaultEvent::LinkDead { tile: TileId(1) });
        cluster.inject_faults(&plan).unwrap();
        cluster.set_watchdog(50);
        // Core 0 waits forever on a load its dead link swallowed.
        cluster.load_program(
            Program::assemble(&format!(
                r#"
                    csrr t1, mhartid
                    bnez t1, done
                    li   t0, {remote}
                    lw   a0, 0(t0)
                    add  a1, a0, a0
                done:
                    wfi
                "#
            ))
            .unwrap(),
        );
        cluster.preload_icaches();
        let err = cluster.run(100_000).unwrap_err();
        let SimError::Deadlock {
            stalled_for,
            diagnostics,
        } = err
        else {
            panic!("expected a deadlock, got {err}");
        };
        assert!(stalled_for >= 50);
        assert_eq!(diagnostics.len(), 4);
        let victim = &diagnostics[0];
        assert_eq!(victim.condition(), "waiting-on-memory");
        assert!(victim.outstanding > 0);
        assert_eq!(cluster.fault_report().unwrap().blackholed_requests, 1);
        // The error renders with one line per core.
        let text = SimError::Deadlock {
            stalled_for,
            diagnostics,
        }
        .to_string();
        assert!(text.contains("waiting-on-memory"));
        assert!(text.contains("core   3"));
    }

    #[test]
    fn hung_core_is_diagnosed_by_the_watchdog() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        let mut plan = FaultPlan::new(6);
        plan.push(FaultEvent::CoreHang {
            cycle: 0,
            core: GlobalCoreId::new(0),
        });
        cluster.inject_faults(&plan).unwrap();
        cluster.set_watchdog(40);
        cluster.load_program(Program::assemble("li a0, 1\nwfi").unwrap());
        cluster.preload_icaches();
        let err = cluster.run(100_000).unwrap_err();
        let SimError::Deadlock { diagnostics, .. } = err else {
            panic!("expected a deadlock, got {err}");
        };
        assert_eq!(diagnostics[0].condition(), "hung");
        assert_eq!(diagnostics[0].retired, 0, "the core hung before issuing");
    }

    #[test]
    fn resuming_a_core_with_a_pinned_transaction_is_a_typed_error() {
        let cfg = four_tile_config();
        let remote = {
            let probe = Cluster::new(cfg.clone(), SimParams::default());
            probe.storage().map().seq_addr(TileId(1), 0)
        };
        let mut cluster = Cluster::new(cfg, SimParams::default());
        let mut plan = FaultPlan::new(7).with_dead_link_policy(DeadLinkPolicy::BlackHole);
        plan.push(FaultEvent::LinkDead { tile: TileId(1) });
        cluster.inject_faults(&plan).unwrap();
        // Core 0 fires a store into the dead link and parks; stores do not
        // block `wfi`, so every core halts — but the transaction is pinned.
        cluster.load_program(
            Program::assemble(&format!(
                r#"
                    csrr t1, mhartid
                    bnez t1, done
                    li   t0, {remote}
                    sw   t1, 0(t0)
                done:
                    wfi
                "#
            ))
            .unwrap(),
        );
        cluster.preload_icaches();
        for _ in 0..200 {
            cluster.step().unwrap();
            if cluster.all_halted() {
                break;
            }
        }
        assert!(cluster.all_halted());
        assert!(!cluster.quiescent(), "the black-holed store never drains");
        assert_eq!(
            cluster.resume_all(0).unwrap_err(),
            SimError::ResumeWithOutstanding {
                core: GlobalCoreId::new(0),
                outstanding: 1,
            }
        );
    }

    #[test]
    fn attribution_buckets_sum_exactly_under_injected_faults() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.write_spm_word(0, 11).unwrap();
        let MemoryRegion::Spm(loc) = cluster.storage().map().locate(0) else {
            panic!("address 0 must be SPM");
        };
        let mut plan = FaultPlan::new(8);
        plan.push(FaultEvent::LinkDegraded {
            tile: TileId(0),
            extra_latency: 5,
        });
        plan.push(FaultEvent::TransientFlip {
            cycle: 0,
            loc,
            mask: 1 << 30,
        });
        let obs = mempool_obs::Obs::new();
        cluster.attach_obs(&obs, "fault-run");
        cluster.inject_faults(&plan).unwrap();
        cluster.load_program(
            Program::assemble(
                r#"
                    li   t0, 0
                    li   t1, 16
                loop:
                    lw   a0, 0(t0)
                    add  a1, a0, a0
                    addi t1, t1, -1
                    bnez t1, loop
                    wfi
                "#,
            )
            .unwrap(),
        );
        cluster.preload_icaches();
        cluster.run(100_000).unwrap();
        let stats = cluster.stats();
        assert!(stats.cores[0].stall_fault_retry > 0, "retries were charged");
        assert!(stats.cores[0].stall_ecc > 0, "the correction was charged");
        let report = stats.attribution(1, 4);
        assert_eq!(
            report.cores[0].total(),
            report.cycles,
            "buckets must sum exactly to total cycles even under faults"
        );
        assert!(report.cores[0].fault_retry > 0);
        assert!(report.cores[0].ecc > 0);

        let fr = cluster.fault_report().unwrap();
        assert_eq!(fr.retried_accesses, 16, "one retry per load");
        assert_eq!(fr.retry_cycles, 16 * 5);
        assert_eq!(fr.ecc_corrected, 1);

        cluster.detach_obs();
        let snapshot = obs.metrics.snapshot();
        let value = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(value("sim_fault_retries_total"), 16);
        assert_eq!(value("sim_ecc_corrected_total"), 1);
    }

    #[test]
    fn generated_plan_runs_to_completion_with_correct_results() {
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(512)
            .build()
            .unwrap();
        let num_cores = cfg.num_cores();
        let mut cluster = Cluster::new(cfg.clone(), SimParams::default());
        let plan = FaultPlan::generate(&FaultConfig::new(42, 1e-6), &cfg);
        assert!(!plan.is_empty());
        cluster.inject_faults(&plan).unwrap();
        cluster.set_watchdog(100_000);
        cluster.load_program(
            Program::assemble(
                r#"
                    li   t0, 0
                    li   t1, 10
                    li   t2, 1
                loop:
                    amoadd.w a0, t2, (t0)
                    addi t1, t1, -1
                    bnez t1, loop
                    wfi
                "#,
            )
            .unwrap(),
        );
        cluster.preload_icaches();
        cluster.run(1_000_000).unwrap();
        assert_eq!(cluster.read_spm_word(0).unwrap(), num_cores * 10);
        let report = cluster.fault_report().unwrap();
        assert!(report.total_injected() >= 2, "floors guarantee faults");
        assert_eq!(report.remapped.len() as u64, report.stuck_banks);
    }

    #[test]
    fn timeseries_samples_land_on_epoch_boundaries() {
        use mempool_obs::Obs;
        let obs = Obs::new();
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.attach_obs(&obs, "ts-run");
        cluster.enable_timeseries(16);
        cluster.load_program(
            Program::assemble(
                r#"
                    li   t0, 0
                    li   t1, 64
                loop:
                    lw   a0, 0(t0)
                    addi t1, t1, -1
                    bnez t1, loop
                    wfi
                "#,
            )
            .unwrap(),
        );
        cluster.preload_icaches();
        cluster.run(1_000_000).unwrap();
        let names = obs.series.names();
        for expected in [
            "ipc/tile0",
            "l1_local_rate",
            "l1_remote_rate",
            "bank_conflict_rate",
            "offchip_occupancy",
            "offchip_backlog",
            "outstanding",
            "spm_touch_rate",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        let ipc = obs.series.samples("ipc/tile0");
        assert!(!ipc.is_empty(), "epochs elapsed, so samples must exist");
        for s in &ipc {
            assert_eq!(s.cycle % 16, 0, "samples land on window multiples");
            assert!(s.value > 0.0, "the core retired work in every epoch");
        }
        let local = obs.series.samples("l1_local_rate");
        assert!(
            local.iter().any(|s| s.value > 0.0),
            "the load loop must show up as local L1 traffic"
        );
        // The export shapes round-trip through the self-written parser.
        let doc = Json::parse(&obs.series.to_json().to_pretty()).unwrap();
        let back = mempool_obs::TimeSeries::from_json(&doc).unwrap();
        assert_eq!(back.names(), names);
    }

    #[test]
    fn crash_dump_at_an_epoch_boundary_drops_the_zero_length_window() {
        use mempool_obs::Obs;
        let obs = Obs::new();
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.attach_obs(&obs, "boundary");
        cluster.enable_timeseries(16);
        cluster.load_program(
            Program::assemble(
                r#"
                    li   t1, 1000
                loop:
                    addi t1, t1, -1
                    bnez t1, loop
                    wfi
                "#,
            )
            .unwrap(),
        );
        cluster.preload_icaches();
        // Step to exactly the first epoch boundary: the sampler fires at
        // cycle 16 and re-baselines, so the next window has zero length.
        for _ in 0..16 {
            cluster.step().unwrap();
        }
        assert_eq!(cluster.cycle(), 16);
        let ipc = obs.series.samples("ipc/tile0");
        assert_eq!(ipc.len(), 1, "exactly one full epoch elapsed");
        assert_eq!(ipc[0].cycle, 16);

        // A crash dump right on the boundary must not flush a second,
        // zero-length sample (the old clamped denominator fabricated one).
        let dump = cluster.crash_dump(&SimError::Timeout { cycles: 16 });
        let ipc = obs.series.samples("ipc/tile0");
        assert_eq!(ipc.len(), 1, "zero-length windows are dropped, not clamped");
        assert!(Json::parse(&dump.to_pretty()).is_ok());

        // Two cycles later the flush covers a real (partial) window and
        // divides by its true length, not a clamped 1.
        cluster.step().unwrap();
        cluster.step().unwrap();
        cluster.crash_dump(&SimError::Timeout { cycles: 18 });
        let ipc = obs.series.samples("ipc/tile0");
        assert_eq!(ipc.len(), 2, "a partial epoch still flushes");
        assert_eq!(ipc[1].cycle, 18);
        assert!(
            ipc[1].value <= 1.0,
            "single-core IPC over the true 2-cycle window stays <= 1, got {}",
            ipc[1].value
        );
    }

    #[test]
    fn crash_dump_on_deadlock_reparses_with_liveness_and_events() {
        let cfg = four_tile_config();
        let remote = {
            let probe = Cluster::new(cfg.clone(), SimParams::default());
            probe.storage().map().seq_addr(TileId(1), 0)
        };
        let obs = mempool_obs::Obs::new();
        let mut cluster = Cluster::new(cfg, SimParams::default());
        cluster.attach_obs(&obs, "crash-run");
        cluster.enable_timeseries(32);
        cluster.enable_flight(64);
        cluster.enable_trace(32);
        let mut plan = FaultPlan::new(5).with_dead_link_policy(DeadLinkPolicy::BlackHole);
        plan.push(FaultEvent::LinkDead { tile: TileId(1) });
        cluster.inject_faults(&plan).unwrap();
        cluster.set_watchdog(50);
        cluster.load_program(
            Program::assemble(&format!(
                r#"
                    csrr t1, mhartid
                    bnez t1, done
                    lw   a2, 0(zero)
                    li   t0, {remote}
                    lw   a0, 0(t0)
                    add  a1, a0, a0
                done:
                    wfi
                "#
            ))
            .unwrap(),
        );
        cluster.preload_icaches();
        let err = cluster.run(100_000).unwrap_err();
        let dump = cluster.crash_dump(&err);

        // The dump is self-contained: it survives a parse round-trip.
        let doc = Json::parse(&dump.to_pretty()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mempool-crashdump/v1")
        );
        let error = doc.get("error").unwrap();
        assert_eq!(error.get("kind").and_then(Json::as_str), Some("deadlock"));
        let liveness = doc.get("liveness").and_then(Json::as_arr).unwrap();
        assert_eq!(liveness.len(), 4);
        assert_eq!(
            liveness[0].get("condition").and_then(Json::as_str),
            Some("waiting-on-memory")
        );
        let recent = liveness[0].get("recent").and_then(Json::as_arr).unwrap();
        assert!(
            !recent.is_empty(),
            "tracing was on, so the victim carries its last instructions"
        );

        // The merged event log holds the watchdog verdict, the swallowed
        // memory traffic, and trace retires — sorted by cycle.
        let events = doc.get("events").and_then(Json::as_arr).unwrap();
        let category = |e: &Json| e.get("category").and_then(Json::as_str).map(String::from);
        assert!(events
            .iter()
            .any(|e| category(e).as_deref() == Some("watchdog")));
        assert!(events.iter().any(|e| category(e).as_deref() == Some("mem")));
        assert!(events
            .iter()
            .any(|e| category(e).as_deref() == Some("retire")));
        let cycles: Vec<i64> = events
            .iter()
            .map(|e| e.get("cycle").and_then(Json::as_int).unwrap())
            .collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "sorted by cycle");

        // The embedded trace doc is a valid Chrome Trace with counter rows.
        let trace = doc.get("trace").unwrap();
        let trace_events = trace.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(trace_events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
        assert!(doc.get("metrics").is_some());
        assert!(doc.get("timeseries").is_some());
    }

    #[test]
    fn crash_dump_flushes_the_partial_sampling_epoch() {
        let obs = mempool_obs::Obs::new();
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        cluster.attach_obs(&obs, "flush-run");
        // Window far beyond the crash point: only the dump-time flush can
        // produce samples.
        cluster.enable_timeseries(1_000_000);
        let mut plan = FaultPlan::new(6);
        plan.push(FaultEvent::CoreHang {
            cycle: 0,
            core: GlobalCoreId::new(0),
        });
        cluster.inject_faults(&plan).unwrap();
        cluster.set_watchdog(20);
        cluster.load_program(Program::assemble("li a0, 1\nwfi").unwrap());
        cluster.preload_icaches();
        let err = cluster.run(100_000).unwrap_err();
        assert!(obs.series.is_empty(), "no epoch boundary was reached");
        let dump = cluster.crash_dump(&err);
        let doc = Json::parse(&dump.to_pretty()).unwrap();
        let series = doc
            .get("timeseries")
            .and_then(|t| t.get("series"))
            .and_then(Json::as_arr)
            .unwrap();
        assert!(!series.is_empty(), "the partial epoch must be flushed");
        let trace_events = doc
            .get("trace")
            .and_then(|t| t.get("traceEvents"))
            .and_then(Json::as_arr)
            .unwrap();
        assert!(trace_events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
    }

    #[test]
    fn crash_dump_without_obs_still_parses() {
        let mut cluster = Cluster::new(tiny_config(), SimParams::default());
        // Stepping without a program is the simplest typed error; with no
        // obs attached the dump degrades to Null sections but stays valid.
        let err = cluster.run(100).unwrap_err();
        let dump = cluster.crash_dump(&err);
        let doc = Json::parse(&dump.to_pretty()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mempool-crashdump/v1")
        );
        assert!(matches!(doc.get("metrics"), Some(Json::Null)));
        assert!(matches!(doc.get("trace"), Some(Json::Null)));
    }
}
