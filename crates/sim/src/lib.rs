//! # mempool-sim
//!
//! A cycle-accurate simulator of the MemPool shared-L1 many-core cluster.
//!
//! The simulator models the structures the paper's performance analysis
//! (Section VI) depends on:
//!
//! * **Snitch-like cores** — in-order, single-issue, with a register
//!   scoreboard allowing multiple outstanding loads (only a *use* of a
//!   pending destination register stalls);
//! * **tile crossbar and hierarchical interconnect** — every SPM bank
//!   accepts one access per cycle (round-robin among contenders), with the
//!   paper's zero-load latencies of 1 / 3 / 5 cycles for tile-local,
//!   group-local, and remote-group accesses;
//! * **L1 instruction caches** — 2 KiB per tile, with a hot-cache preload
//!   mode matching the paper's compute-phase measurement methodology;
//! * **off-chip memory port** — a configurable-bandwidth DMA model
//!   (bytes/cycle) with idealized latency, exactly as Section VI-A assumes.
//!
//! ## Example
//!
//! ```
//! use mempool_arch::ClusterConfig;
//! use mempool_isa::Program;
//! use mempool_sim::{Cluster, SimParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ClusterConfig::builder()
//!     .groups(1)
//!     .tiles_per_group(1)
//!     .cores_per_tile(2)
//!     .build()?;
//! let program = Program::assemble(
//!     r#"
//!         csrr a0, mhartid
//!         slli a1, a0, 2      # each core stores to its own word
//!         li   a2, 100
//!         add  a2, a2, a0
//!         sw   a2, 0(a1)
//!         wfi
//!     "#,
//! )?;
//! let mut cluster = Cluster::new(cfg, SimParams::default());
//! cluster.load_program(program);
//! cluster.run(10_000)?;
//! assert_eq!(cluster.read_spm_word(0)?, 100);
//! assert_eq!(cluster.read_spm_word(4)?, 101);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;
pub mod cluster;
pub mod core;
pub(crate) mod engine;
pub mod icache;
pub mod memory;
pub mod offchip;
pub mod params;
pub mod profile;
pub mod stats;
pub mod trace;

pub use ckpt::{run_with_checkpoints, CheckpointError, Checkpointer, CHECKPOINT_SCHEMA};
pub use cluster::{planned_engine, Cluster, EngineSelection, SimError};
pub use offchip::OffchipPort;
pub use params::{default_threads, set_default_threads, SimParams, ENGINE_VERSION};
pub use profile::{
    engine_profile, engine_profile_json, reset_engine_profile, EngineProfile, QuantumSample,
    WorkerProfile,
};
pub use stats::{BankStats, ClusterStats, CoreStats};
pub use trace::{Trace, TraceEntry};
