//! Simulation timing parameters.

use std::sync::atomic::{AtomicUsize, Ordering};

use mempool_arch::LatencyModel;

/// Process-wide default for [`SimParams::threads`], consulted by
/// [`SimParams::default`]. `repro --threads N` sets this once at startup so
/// every cluster constructed through default parameters inherits it.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default host-thread count picked up by
/// [`SimParams::default`]. Zero is clamped to 1 (sequential).
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The process-wide default host-thread count (see
/// [`set_default_threads`]).
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// Timing parameters of the cluster simulator.
///
/// The defaults model the paper's setup: MemPool's 1/3/5-cycle interconnect,
/// Snitch's scoreboard with a handful of outstanding loads, a one-cycle
/// taken-branch bubble in the short in-order pipeline, and an off-chip port
/// delivering 16 bytes per cycle (one DDR channel clocked at the core
/// frequency) with idealized latency.
///
/// # Example
///
/// ```
/// use mempool_sim::SimParams;
///
/// let fast_dram = SimParams {
///     offchip_bytes_per_cycle: 64,
///     ..SimParams::default()
/// };
/// assert_eq!(fast_dram.max_outstanding, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Zero-load interconnect latencies.
    pub latency: LatencyModel,
    /// Maximum outstanding memory transactions per core (Snitch scoreboard
    /// depth).
    pub max_outstanding: u32,
    /// Extra cycles lost on a taken branch or jump (fetch redirect bubble).
    pub taken_branch_penalty: u32,
    /// Cycles to refill one I$ line on a miss.
    pub icache_miss_penalty: u32,
    /// I$ line size in instruction words.
    pub icache_line_words: u32,
    /// I$ associativity (MemPool's lightweight shared I$ is direct-mapped).
    pub icache_ways: u32,
    /// Off-chip memory bandwidth in bytes per cycle (the paper sweeps 4 to
    /// 64; 16 models a single DDR channel).
    pub offchip_bytes_per_cycle: u32,
    /// Idealized off-chip access latency in cycles, added once per DMA
    /// transfer (the paper idealizes this to a constant).
    pub offchip_latency: u32,
    /// Extra response cycles when the SEC-DED logic corrects (and scrubs)
    /// a single-bit error on a bank read — only observable in
    /// fault-injection runs.
    pub ecc_correction_penalty: u32,
    /// Host threads driving the phased-tick engine. `1` (the default) runs
    /// the purely sequential engine; `N > 1` advances tile-local state on
    /// `N` host threads with a deterministic commit barrier, producing
    /// bit-identical results. Purely a host-side knob: it never changes
    /// simulated timing.
    pub threads: usize,
}

impl SimParams {
    /// Returns parameters with a different off-chip bandwidth, keeping
    /// everything else.
    pub fn with_offchip_bandwidth(self, bytes_per_cycle: u32) -> Self {
        SimParams {
            offchip_bytes_per_cycle: bytes_per_cycle,
            ..self
        }
    }
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            latency: LatencyModel::PAPER,
            max_outstanding: 8,
            taken_branch_penalty: 1,
            icache_miss_penalty: 25,
            icache_line_words: 8,
            icache_ways: 1,
            offchip_bytes_per_cycle: 16,
            offchip_latency: 30,
            ecc_correction_penalty: 3,
            threads: default_threads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let p = SimParams::default();
        assert_eq!(p.latency, LatencyModel::PAPER);
        assert_eq!(p.offchip_bytes_per_cycle, 16);
    }

    #[test]
    fn default_threads_is_sequential() {
        // NOTE: other tests in the process must not call
        // `set_default_threads`; tests that need a thread count set
        // `SimParams.threads` directly.
        assert_eq!(SimParams::default().threads, 1);
    }

    #[test]
    fn bandwidth_override_keeps_other_fields() {
        let p = SimParams::default().with_offchip_bandwidth(4);
        assert_eq!(p.offchip_bytes_per_cycle, 4);
        assert_eq!(
            p.icache_miss_penalty,
            SimParams::default().icache_miss_penalty
        );
    }
}
