//! Simulation timing parameters.

use std::sync::atomic::{AtomicUsize, Ordering};

use mempool_arch::LatencyModel;

/// Version tag of the simulation engine, mixed into every content-addressed
/// cache key (`mempool-serve`): bump it whenever a change alters simulated
/// timing or artifact contents, so stale cached results are invalidated
/// instead of replayed. The host-thread count is deliberately *not* part of
/// the version — the phased-tick engine is bit-identical at any thread
/// count, so results are shareable across `--threads` settings.
pub const ENGINE_VERSION: &str = "mempool-sim/v1-phased-tick";

/// Process-wide default for [`SimParams::threads`], consulted by
/// [`SimParams::default`]. `repro --threads N` sets this once at startup so
/// every cluster constructed through default parameters inherits it.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default host-thread count picked up by
/// [`SimParams::default`]. Zero is clamped to 1 (sequential).
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The process-wide default host-thread count (see
/// [`set_default_threads`]).
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// Timing parameters of the cluster simulator.
///
/// The defaults model the paper's setup: MemPool's 1/3/5-cycle interconnect,
/// Snitch's scoreboard with a handful of outstanding loads, a one-cycle
/// taken-branch bubble in the short in-order pipeline, and an off-chip port
/// delivering 16 bytes per cycle (one DDR channel clocked at the core
/// frequency) with idealized latency.
///
/// # Example
///
/// ```
/// use mempool_sim::SimParams;
///
/// let fast_dram = SimParams {
///     offchip_bytes_per_cycle: 64,
///     ..SimParams::default()
/// };
/// assert_eq!(fast_dram.max_outstanding, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Zero-load interconnect latencies.
    pub latency: LatencyModel,
    /// Maximum outstanding memory transactions per core (Snitch scoreboard
    /// depth).
    pub max_outstanding: u32,
    /// Extra cycles lost on a taken branch or jump (fetch redirect bubble).
    pub taken_branch_penalty: u32,
    /// Cycles to refill one I$ line on a miss.
    pub icache_miss_penalty: u32,
    /// I$ line size in instruction words.
    pub icache_line_words: u32,
    /// I$ associativity (MemPool's lightweight shared I$ is direct-mapped).
    pub icache_ways: u32,
    /// Off-chip memory bandwidth in bytes per cycle (the paper sweeps 4 to
    /// 64; 16 models a single DDR channel).
    pub offchip_bytes_per_cycle: u32,
    /// Idealized off-chip access latency in cycles, added once per DMA
    /// transfer (the paper idealizes this to a constant).
    pub offchip_latency: u32,
    /// Extra response cycles when the SEC-DED logic corrects (and scrubs)
    /// a single-bit error on a bank read — only observable in
    /// fault-injection runs.
    pub ecc_correction_penalty: u32,
    /// Host threads driving the phased-tick engine. `1` (the default) runs
    /// the purely sequential engine; `N > 1` advances tile-local state on
    /// `N` host threads with a deterministic commit barrier, producing
    /// bit-identical results. Purely a host-side knob: it never changes
    /// simulated timing.
    pub threads: usize,
}

impl SimParams {
    /// Returns parameters with a different off-chip bandwidth, keeping
    /// everything else.
    pub fn with_offchip_bandwidth(self, bytes_per_cycle: u32) -> Self {
        SimParams {
            offchip_bytes_per_cycle: bytes_per_cycle,
            ..self
        }
    }

    /// A 64-bit FNV-1a digest over every *timing-relevant* field in a
    /// fixed canonical order, seeded with [`ENGINE_VERSION`]. Two
    /// parameter sets that simulate identically hash identically — in
    /// particular [`SimParams::threads`] is excluded, because the
    /// phased-tick engine is bit-identical at any host-thread count. The
    /// experiment service uses this digest as part of its
    /// content-addressed cache key, so semantically equal configs (however
    /// they were spelled or defaulted) dedupe, and an engine-version bump
    /// invalidates every stale entry.
    pub fn digest(&self) -> u64 {
        self.digest_with_version(ENGINE_VERSION)
    }

    /// [`SimParams::digest`] under an explicit engine-version tag —
    /// exposed so tests can prove that bumping the version changes every
    /// key.
    pub fn digest_with_version(&self, version: &str) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix_bytes = |bytes: &[u8]| {
            for &byte in bytes {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        mix_bytes(version.as_bytes());
        // Canonical field order: latency triplet first, then the
        // scoreboard/pipeline knobs, then the memory system. Appending a
        // field is a semantic change and belongs at the end (with an
        // ENGINE_VERSION bump if it alters existing behavior).
        for value in [
            self.latency.tile_local,
            self.latency.group_local,
            self.latency.remote,
            self.max_outstanding,
            self.taken_branch_penalty,
            self.icache_miss_penalty,
            self.icache_line_words,
            self.icache_ways,
            self.offchip_bytes_per_cycle,
            self.offchip_latency,
            self.ecc_correction_penalty,
        ] {
            mix_bytes(&value.to_le_bytes());
        }
        hash
    }
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            latency: LatencyModel::PAPER,
            max_outstanding: 8,
            taken_branch_penalty: 1,
            icache_miss_penalty: 25,
            icache_line_words: 8,
            icache_ways: 1,
            offchip_bytes_per_cycle: 16,
            offchip_latency: 30,
            ecc_correction_penalty: 3,
            threads: default_threads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let p = SimParams::default();
        assert_eq!(p.latency, LatencyModel::PAPER);
        assert_eq!(p.offchip_bytes_per_cycle, 16);
    }

    #[test]
    fn default_threads_is_sequential() {
        // NOTE: other tests in the process must not call
        // `set_default_threads`; tests that need a thread count set
        // `SimParams.threads` directly.
        assert_eq!(SimParams::default().threads, 1);
    }

    #[test]
    fn digest_is_stable_across_runs_and_ignores_threads() {
        let a = SimParams::default();
        // A config spelled through a different construction path but
        // semantically equal must land on the same key.
        let b = SimParams {
            latency: LatencyModel::PAPER,
            ..SimParams::default()
        };
        assert_eq!(a.digest(), b.digest());
        // The host-thread count never changes simulated results, so it
        // must not fragment the cache.
        let threaded = SimParams {
            threads: 8,
            ..SimParams::default()
        };
        assert_eq!(a.digest(), threaded.digest());
    }

    #[test]
    fn digest_sees_every_timing_field() {
        let base = SimParams::default();
        let variants = [
            SimParams {
                max_outstanding: 9,
                ..base
            },
            SimParams {
                taken_branch_penalty: 2,
                ..base
            },
            SimParams {
                icache_miss_penalty: 26,
                ..base
            },
            SimParams {
                icache_line_words: 16,
                ..base
            },
            SimParams {
                icache_ways: 2,
                ..base
            },
            SimParams {
                offchip_bytes_per_cycle: 32,
                ..base
            },
            SimParams {
                offchip_latency: 31,
                ..base
            },
            SimParams {
                ecc_correction_penalty: 4,
                ..base
            },
            base.with_offchip_bandwidth(4),
        ];
        for variant in variants {
            assert_ne!(base.digest(), variant.digest(), "{variant:?}");
        }
    }

    #[test]
    fn engine_version_bump_invalidates_every_key() {
        let p = SimParams::default();
        assert_eq!(p.digest(), p.digest_with_version(ENGINE_VERSION));
        assert_ne!(
            p.digest(),
            p.digest_with_version("mempool-sim/v2-hypothetical")
        );
    }

    #[test]
    fn bandwidth_override_keeps_other_fields() {
        let p = SimParams::default().with_offchip_bandwidth(4);
        assert_eq!(p.offchip_bytes_per_cycle, 4);
        assert_eq!(
            p.icache_miss_penalty,
            SimParams::default().icache_miss_penalty
        );
    }
}
