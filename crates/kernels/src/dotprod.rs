//! Dot product with an atomic tree-free reduction.
//!
//! Each core accumulates a partial sum over its chunk, then publishes it
//! with a single `amoadd.w` to a shared accumulator — exercising the
//! remote-access and atomics paths of the interconnect.

use mempool_isa::Program;
use mempool_sim::Cluster;

use crate::workload::{Kernel, KernelError};

/// The dot-product kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotProduct {
    n: u32,
}

impl DotProduct {
    /// Creates `sum(x[i] * y[i])` over `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "vector length must be nonzero");
        DotProduct { n }
    }

    fn layout(&self, cluster: &Cluster) -> (u32, u32, u32) {
        let base = cluster.storage().map().interleaved_base();
        // x, y, then the shared accumulator word.
        (base, base + self.n * 4, base + 2 * self.n * 4)
    }

    fn x_value(i: u32) -> u32 {
        (i % 31) + 1
    }

    fn y_value(i: u32) -> u32 {
        (i % 17) + 2
    }

    /// Host-side reference result.
    pub fn expected(&self) -> u32 {
        (0..self.n)
            .map(|i| Self::x_value(i).wrapping_mul(Self::y_value(i)))
            .fold(0u32, u32::wrapping_add)
    }
}

impl Kernel for DotProduct {
    fn name(&self) -> &'static str {
        "dotprod"
    }

    fn program(&self, cluster: &Cluster) -> Result<Program, KernelError> {
        let cores = cluster.config().num_cores();
        if !self.n.is_multiple_of(cores) {
            return Err(KernelError::BadShape {
                detail: format!("n = {} must be a multiple of {cores} cores", self.n),
            });
        }
        let chunk = self.n / cores;
        let (x, y, acc) = self.layout(cluster);
        let src = format!(
            r#"
                csrr t0, mhartid
                li   t1, {chunk}
                mul  t2, t0, t1
                slli t3, t2, 2
                li   s0, {x}
                add  s0, s0, t3
                li   s1, {y}
                add  s1, s1, t3
                li   a0, 0             # partial sum
                li   t4, {chunk}
            loop:
                p.lw a1, 4(s0!)
                p.lw a2, 4(s1!)
                p.mac a0, a1, a2
                addi t4, t4, -1
                bnez t4, loop
                li   s2, {acc}
                amoadd.w zero, a0, (s2)
                wfi
            "#,
        );
        Ok(Program::assemble(&src)?)
    }

    fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError> {
        let (x, y, acc) = self.layout(cluster);
        for i in 0..self.n {
            cluster.write_spm_word(x + i * 4, Self::x_value(i))?;
            cluster.write_spm_word(y + i * 4, Self::y_value(i))?;
        }
        cluster.write_spm_word(acc, 0)?;
        Ok(())
    }

    fn verify(&self, cluster: &Cluster) -> Result<(), KernelError> {
        let (_, _, acc) = self.layout(cluster);
        let got = cluster.read_spm_word(acc)?;
        let expected = self.expected();
        if got != expected {
            return Err(KernelError::Mismatch {
                detail: format!("dot product = {got}, expected {expected}"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::ClusterConfig;
    use mempool_sim::SimParams;

    fn cluster(groups: u32) -> Cluster {
        let cfg = ClusterConfig::builder()
            .groups(groups)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(256)
            .build()
            .unwrap();
        Cluster::new(cfg, SimParams::default())
    }

    #[test]
    fn dot_product_is_correct_single_group() {
        let mut c = cluster(1);
        let kernel = DotProduct::new(512);
        kernel.run(&mut c, 10_000_000).expect("dotprod failed");
    }

    #[test]
    fn dot_product_is_correct_across_groups() {
        // With two groups the accumulator is remote for half the cores,
        // exercising the 5-cycle path and remote atomics.
        let mut c = cluster(2);
        let kernel = DotProduct::new(1024);
        kernel.run(&mut c, 10_000_000).expect("dotprod failed");
        let [_, _, remote] = c.stats().accesses_by_class();
        assert!(remote > 0, "multi-group run must produce remote accesses");
    }

    #[test]
    fn reduction_does_not_lose_updates_under_contention() {
        // Many cores, tiny chunks: the amoadds pile onto one bank.
        let mut c = cluster(1);
        let kernel = DotProduct::new(16);
        kernel
            .run(&mut c, 1_000_000)
            .expect("contended dotprod failed");
    }
}
