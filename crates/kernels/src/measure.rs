//! Measurement of the analytic model's constants on the cycle-accurate
//! simulator.
//!
//! The paper measures its compute phases "with a hot instruction cache"
//! on RTL simulation and accumulates phases analytically; this module does
//! the same on `mempool-sim`. Because a full 256-core instance is slow to
//! sweep, the per-MAC cost is measured on a 16-core instance (the inner
//! loop's behavior is per-core and bank-local, so it transfers), and the
//! barrier cost — which serializes on one bank and therefore scales with
//! the core count — is measured at several core counts and extrapolated
//! linearly.

use mempool_arch::ClusterConfig;
use mempool_isa::Program;
use mempool_obs::{Json, Obs};
use mempool_sim::{Cluster, SimParams};

use crate::barrier::barrier_asm;
use crate::matmul::{Blocking, ComputePhase, PhaseModel};
use crate::workload::{Kernel, KernelError};

/// Constants measured on the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredConstants {
    /// Cycles per multiply-accumulate in the compute phase's steady state.
    pub cycles_per_mac: f64,
    /// Per-phase static overhead (loop setup), excluding the barrier.
    pub loop_overhead: f64,
    /// Barrier cost per participating core (the serialized atomics).
    pub barrier_cycles_per_core: f64,
    /// Barrier base cost (generation round trip).
    pub barrier_base_cycles: f64,
}

impl MeasuredConstants {
    /// Builds a [`PhaseModel`] for a cluster of `num_cores` cores from
    /// these measurements.
    pub fn phase_model(&self, m: u64, num_cores: u64) -> PhaseModel {
        PhaseModel {
            m,
            num_cores,
            cycles_per_mac: self.cycles_per_mac,
            phase_overhead: self.loop_overhead
                + self.barrier_base_cycles
                + self.barrier_cycles_per_core * num_cores as f64,
        }
    }
}

fn measurement_cluster() -> Result<Cluster, KernelError> {
    let cfg = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(512)
        .build()
        .map_err(|e| KernelError::BadShape {
            detail: e.to_string(),
        })?;
    Ok(Cluster::new(cfg, SimParams::default()))
}

/// Measures the compute-phase constants by running two tile sizes and
/// solving for the slope (cycles/MAC) and intercept (setup overhead),
/// using the default (1x2-blocked) inner loop.
///
/// # Errors
///
/// Propagates simulation and verification errors.
pub fn measure_compute_constants() -> Result<(f64, f64), KernelError> {
    measure_compute_constants_with(Blocking::OneByTwo)
}

/// Measures the compute-phase constants for a specific inner-loop shape —
/// the code-quality axis of the kernel: the staggered variant lands near
/// the 3.2 cycles/MAC the recorded Figure 6 model uses.
///
/// # Errors
///
/// Propagates simulation and verification errors.
pub fn measure_compute_constants_with(blocking: Blocking) -> Result<(f64, f64), KernelError> {
    measure_compute_constants_observed(blocking, None)
}

/// [`measure_compute_constants_with`], optionally recording each
/// measurement run into an [`Obs`] handle: per-run DMA/core spans from the
/// simulator plus one `compute` phase span and a `measure_cycles` metric
/// per tile size.
///
/// # Errors
///
/// Propagates simulation and verification errors.
pub fn measure_compute_constants_observed(
    blocking: Blocking,
    obs: Option<&Obs>,
) -> Result<(f64, f64), KernelError> {
    let mut cycles = Vec::new();
    let mut macs = Vec::new();
    for p in [32u32, 64] {
        let run = format!("compute-p{p}");
        let mut cluster = measurement_cluster()?;
        if let Some(obs) = obs {
            cluster.attach_obs(obs, &run);
        }
        let phase = ComputePhase::new(p).with_blocking(blocking);
        let c = phase.run(&mut cluster, 100_000_000)?;
        record_phase(obs, &run, "compute", c, &[("p", p as i64)]);
        if obs.is_some() {
            cluster.detach_obs();
        }
        cycles.push(c as f64);
        macs.push(phase.total_macs() as f64 / cluster.config().num_cores() as f64);
    }
    let cpm = (cycles[1] - cycles[0]) / (macs[1] - macs[0]);
    let overhead = (cycles[0] - cpm * macs[0]).max(0.0);
    Ok((cpm, overhead))
}

/// Records a whole-measurement phase span (cycle 0 to `end`) on the run's
/// `phase` track and mirrors the cycle count as a gauge.
fn record_phase(obs: Option<&Obs>, run: &str, name: &str, end: u64, args: &[(&str, i64)]) {
    let Some(obs) = obs else { return };
    let process = obs.spans.process(run);
    let track = obs.spans.track(process, "phase");
    let args = args
        .iter()
        .map(|(k, v)| (k.to_string(), Json::Int(*v)))
        .collect();
    obs.spans.complete(track, name, 0, end, args);
    obs.metrics
        .gauge("measure_cycles", &[("run", run), ("phase", name)])
        .set(end as f64);
}

/// Measures the barrier cost at two core counts and fits a line.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_barrier_constants() -> Result<(f64, f64), KernelError> {
    measure_barrier_constants_observed(None)
}

/// [`measure_barrier_constants`], optionally recording each core-count
/// point as a `barrier` phase span and `measure_cycles` metric.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_barrier_constants_observed(obs: Option<&Obs>) -> Result<(f64, f64), KernelError> {
    let mut points = Vec::new();
    for (tiles, cores) in [(2u32 * 2, 2u32), (4 * 4, 4)] {
        let side = (tiles as f64).sqrt() as u32;
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(side * side)
            .cores_per_tile(cores)
            .banks_per_tile(4)
            .bank_words(256)
            .build()
            .map_err(|e| KernelError::BadShape {
                detail: e.to_string(),
            })?;
        let n = cfg.num_cores();
        let run = format!("barrier-n{n}");
        let src = format!("li s10, 0x100\nli s11, 0x104\n{}\nwfi", barrier_asm(n, "0"));
        let mut cluster = Cluster::new(cfg, SimParams::default());
        if let Some(obs) = obs {
            cluster.attach_obs(obs, &run);
        }
        cluster.load_program(Program::assemble(&src)?);
        cluster.preload_icaches();
        let cycles = cluster.run(10_000_000)?;
        record_phase(obs, &run, "barrier", cycles, &[("cores", n as i64)]);
        if obs.is_some() {
            cluster.detach_obs();
        }
        points.push((n as f64, cycles as f64));
    }
    let slope = (points[1].1 - points[0].1) / (points[1].0 - points[0].0);
    let base = (points[0].1 - slope * points[0].0).max(0.0);
    Ok((slope, base))
}

/// Runs both measurements.
///
/// # Errors
///
/// Propagates simulation and verification errors.
pub fn measure_constants() -> Result<MeasuredConstants, KernelError> {
    measure_constants_observed(None)
}

/// [`measure_constants`], optionally recording every measurement run
/// (compute tile sizes and barrier core counts) into an [`Obs`] handle —
/// the spans export to a Perfetto-loadable trace via
/// [`mempool_obs::chrome_trace`].
///
/// # Errors
///
/// Propagates simulation and verification errors.
pub fn measure_constants_observed(obs: Option<&Obs>) -> Result<MeasuredConstants, KernelError> {
    let (cycles_per_mac, loop_overhead) =
        measure_compute_constants_observed(Blocking::OneByTwo, obs)?;
    let (barrier_cycles_per_core, barrier_base_cycles) = measure_barrier_constants_observed(obs)?;
    Ok(MeasuredConstants {
        cycles_per_mac,
        loop_overhead,
        barrier_cycles_per_core,
        barrier_base_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cpm_matches_the_generated_inner_loop() {
        let (cpm, overhead) = measure_compute_constants().expect("measurement failed");
        // ~3 issue slots per MAC plus stalls; far from 1 (too optimistic)
        // and far from 6 (the un-blocked naive loop).
        assert!((2.5..4.5).contains(&cpm), "cycles/MAC {cpm:.2}");
        assert!(overhead >= 0.0);
    }

    #[test]
    fn blocking_quality_ordering_holds_under_measurement() {
        let (naive, _) = measure_compute_constants_with(Blocking::Naive).unwrap();
        let (blocked, _) = measure_compute_constants_with(Blocking::OneByTwo).unwrap();
        let (staggered, _) = measure_compute_constants_with(Blocking::Staggered).unwrap();
        assert!(
            staggered < blocked && blocked < naive,
            "cycles/MAC must improve with kernel quality: {staggered:.2} < {blocked:.2} < {naive:.2}"
        );
        assert!(
            (2.5..3.8).contains(&staggered),
            "staggered cycles/MAC {staggered:.2} should match the recorded model constant"
        );
    }

    #[test]
    fn observed_barrier_measurement_records_spans_and_metrics() {
        let obs = Obs::new();
        let plain = measure_barrier_constants().unwrap();
        let observed = measure_barrier_constants_observed(Some(&obs)).unwrap();
        assert_eq!(plain, observed, "observation must not perturb the runs");

        // One `barrier` phase span per core-count point, each mirrored by a
        // `measure_cycles` gauge with matching run labels.
        let spans = obs.spans.spans();
        let barrier_spans: Vec<_> = spans.iter().filter(|s| s.name == "barrier").collect();
        assert_eq!(barrier_spans.len(), 2);
        assert!(barrier_spans.iter().all(|s| s.cycles() > 0));
        let snapshot = obs.metrics.snapshot();
        let gauges: Vec<_> = snapshot
            .gauges
            .iter()
            .filter(|g| g.name == "measure_cycles")
            .collect();
        assert_eq!(gauges.len(), 2);
        for span in &barrier_spans {
            assert!(
                gauges.iter().any(|g| g.value == span.cycles() as f64),
                "no measure_cycles gauge matches span of {} cycles",
                span.cycles()
            );
        }
        // The per-core wfi tails recorded by the simulator are in there too,
        // and the whole timeline exports as valid Chrome Trace JSON.
        assert!(spans.iter().any(|s| s.name == "wfi"));
        let trace = mempool_obs::chrome_trace(&obs.spans);
        assert!(mempool_obs::Json::parse(&trace.to_pretty()).is_ok());
    }

    #[test]
    fn barrier_fit_is_positive_and_superlinear_in_cores() {
        let (slope, base) = measure_barrier_constants().expect("measurement failed");
        assert!(slope > 0.5, "barrier slope {slope:.2} cycles/core");
        assert!(base >= 0.0, "barrier base {base:.2}");
    }

    #[test]
    fn full_model_lands_near_the_default_constants() {
        let measured = measure_constants().unwrap();
        let model = measured.phase_model(mempool_arch::SpmCapacity::MATMUL_MATRIX_DIM, 256);
        let defaults = PhaseModel::with_measured_defaults();
        let ratio_cpm = model.cycles_per_mac / defaults.cycles_per_mac;
        assert!(
            (0.7..1.4).contains(&ratio_cpm),
            "measured cycles/MAC {:.2} drifted from the recorded default {:.2}",
            model.cycles_per_mac,
            defaults.cycles_per_mac
        );
        // The lean measured overhead (one barrier + loop setup) bounds the
        // recorded full-workload overhead from below: the paper's kernels
        // additionally pay work (re)distribution and DMA programming per
        // phase, which the 16-core microbenchmark does not capture.
        assert!(
            model.phase_overhead > 200.0,
            "measured overhead {:.0} is implausibly small",
            model.phase_overhead
        );
        assert!(
            model.phase_overhead < 3.0 * defaults.phase_overhead,
            "measured overhead {:.0} exceeds the recorded default {:.0} by >3x",
            model.phase_overhead,
            defaults.phase_overhead
        );
    }
}
