//! Workload characterization: run a set of kernels and produce the
//! comparison table the paper's "target domain" discussion implies —
//! cycles, IPC, stall breakdown, bank-conflict rate, and access mix.

use std::fmt;

use mempool_arch::ClusterConfig;
use mempool_sim::{Cluster, SimParams};

use crate::workload::{Kernel, KernelError};

/// One kernel's characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Kernel name.
    pub name: &'static str,
    /// Cycles to completion.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub retired: u64,
    /// Cluster-wide instructions per cycle.
    pub ipc: f64,
    /// Bank-conflict cycles per SPM access.
    pub conflict_rate: f64,
    /// Fraction of SPM accesses leaving the issuing tile.
    pub remote_fraction: f64,
    /// Stall cycles (all causes) per retired instruction.
    pub stall_rate: f64,
}

/// Runs `kernel` on a fresh cluster of `config` and characterizes it.
///
/// # Errors
///
/// Propagates any build, simulation, or verification error.
pub fn characterize(
    kernel: &dyn Kernel,
    config: &ClusterConfig,
    params: SimParams,
) -> Result<Characterization, KernelError> {
    let mut cluster = Cluster::new(config.clone(), params);
    let cycles = kernel.run(&mut cluster, 1_000_000_000)?;
    let stats = cluster.stats();
    let [local, group, remote] = stats.accesses_by_class();
    let accesses = (local + group + remote).max(1);
    let retired = stats.total_retired();
    let stalls: u64 = stats.cores.iter().map(|c| c.total_stalls()).sum();
    Ok(Characterization {
        name: kernel.name(),
        cycles,
        retired,
        ipc: stats.ipc(),
        conflict_rate: stats.total_conflicts() as f64 / accesses as f64,
        remote_fraction: (group + remote) as f64 / accesses as f64,
        stall_rate: stalls as f64 / retired.max(1) as f64,
    })
}

/// Characterizes a whole suite and renders the table.
///
/// # Errors
///
/// Propagates the first kernel failure.
pub fn characterize_suite(
    kernels: &[&dyn Kernel],
    config: &ClusterConfig,
    params: SimParams,
) -> Result<Suite, KernelError> {
    let rows = kernels
        .iter()
        .map(|k| characterize(*k, config, params))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Suite { rows })
}

/// A characterized kernel suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    rows: Vec<Characterization>,
}

impl Suite {
    /// The characterizations.
    pub fn rows(&self) -> &[Characterization] {
        &self.rows
    }

    /// Finds a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Characterization> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>9} {:>9} {:>6} {:>10} {:>8} {:>8}",
            "kernel", "cycles", "instrs", "IPC", "conflicts", "remote", "stalls"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<24} {:>9} {:>9} {:>6.2} {:>9.1} % {:>6.1} % {:>8.2}",
                r.name,
                r.cycles,
                r.retired,
                r.ipc,
                r.conflict_rate * 100.0,
                r.remote_fraction * 100.0,
                r.stall_rate
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axpy::Axpy;
    use crate::dotprod::DotProduct;
    use crate::matmul::ComputePhase;
    use crate::transpose::Transpose;

    fn config() -> ClusterConfig {
        ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(256)
            .build()
            .unwrap()
    }

    fn suite() -> Suite {
        let axpy = Axpy::new(1024, 3);
        let dot = DotProduct::new(1024);
        let mm = ComputePhase::new(32);
        let tr = Transpose::new(64);
        characterize_suite(&[&axpy, &dot, &mm, &tr], &config(), SimParams::default())
            .expect("suite runs")
    }

    #[test]
    fn suite_characterizes_every_kernel() {
        let s = suite();
        assert_eq!(s.rows().len(), 4);
        for r in s.rows() {
            assert!(r.cycles > 0, "{}", r.name);
            assert!(r.ipc > 0.0 && r.ipc <= 16.0, "{}: ipc {}", r.name, r.ipc);
        }
    }

    #[test]
    fn kernel_signatures_differ_as_expected() {
        let s = suite();
        // The strided transpose conflicts far more than streaming axpy.
        let axpy = s.kernel("axpy").unwrap();
        let transpose = s.kernel("transpose").unwrap();
        assert!(
            transpose.conflict_rate > axpy.conflict_rate + 0.05,
            "transpose {:.3} vs axpy {:.3}",
            transpose.conflict_rate,
            axpy.conflict_rate
        );
        // All kernels here keep their data tile-spread, so remote traffic
        // exists (interleaving crosses tiles) but is bounded.
        for r in s.rows() {
            assert!(r.remote_fraction <= 1.0);
        }
    }

    #[test]
    fn display_aligns_columns() {
        let text = suite().to_string();
        assert!(text.contains("kernel"));
        assert_eq!(text.lines().count(), 5);
    }
}
