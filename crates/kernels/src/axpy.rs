//! AXPY kernel: `y[i] = a * x[i] + y[i]` over all cores.
//!
//! A bandwidth-friendly streaming kernel: each core handles a contiguous
//! chunk of the vectors in the interleaved region, so consecutive words
//! hit consecutive banks and the cluster streams conflict-free.

use mempool_isa::Program;
use mempool_sim::Cluster;

use crate::workload::{Kernel, KernelError};

/// The AXPY kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Axpy {
    n: u32,
    a: u32,
}

impl Axpy {
    /// Creates `y = a*x + y` over `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32, a: u32) -> Self {
        assert!(n > 0, "vector length must be nonzero");
        Axpy { n, a }
    }

    /// Vector length.
    pub fn n(&self) -> u32 {
        self.n
    }

    fn bases(&self, cluster: &Cluster) -> (u32, u32) {
        let base = cluster.storage().map().interleaved_base();
        (base, base + self.n * 4)
    }

    fn x_value(i: u32) -> u32 {
        i * 3 + 1
    }

    fn y_value(i: u32) -> u32 {
        i.wrapping_mul(7) + 2
    }
}

impl Kernel for Axpy {
    fn name(&self) -> &'static str {
        "axpy"
    }

    fn program(&self, cluster: &Cluster) -> Result<Program, KernelError> {
        let cores = cluster.config().num_cores();
        if !self.n.is_multiple_of(cores) {
            return Err(KernelError::BadShape {
                detail: format!("n = {} must be a multiple of {cores} cores", self.n),
            });
        }
        let chunk = self.n / cores;
        // Core-strided distribution: core c handles elements c, c+N,
        // c+2N, ... so that at any instant different cores sit on
        // different banks of the interleaved region.
        let stride = cores * 4;
        if stride > 2047 {
            return Err(KernelError::BadShape {
                detail: format!("{cores} cores exceed the post-increment stride limit"),
            });
        }
        let (x, y) = self.bases(cluster);
        let src = format!(
            r#"
                csrr t0, mhartid
                slli t3, t0, 2         # byte offset of my first element
                li   s0, {x}
                add  s0, s0, t3        # x pointer
                li   s1, {y}
                add  s1, s1, t3        # y pointer
                li   s2, {a}           # scalar a
                li   t4, {chunk}
            loop:
                p.lw a0, {stride}(s0!)
                lw   a1, 0(s1)
                p.mac a1, s2, a0       # y += a * x
                p.sw a1, {stride}(s1!)
                addi t4, t4, -1
                bnez t4, loop
                wfi
            "#,
            a = self.a,
        );
        Ok(Program::assemble(&src)?)
    }

    fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError> {
        let (x, y) = self.bases(cluster);
        for i in 0..self.n {
            cluster.write_spm_word(x + i * 4, Self::x_value(i))?;
            cluster.write_spm_word(y + i * 4, Self::y_value(i))?;
        }
        Ok(())
    }

    fn verify(&self, cluster: &Cluster) -> Result<(), KernelError> {
        let (_, y) = self.bases(cluster);
        for i in 0..self.n {
            let expected = Self::y_value(i).wrapping_add(self.a.wrapping_mul(Self::x_value(i)));
            let got = cluster.read_spm_word(y + i * 4)?;
            if got != expected {
                return Err(KernelError::Mismatch {
                    detail: format!("y[{i}] = {got}, expected {expected}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::ClusterConfig;
    use mempool_sim::SimParams;

    fn cluster() -> Cluster {
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(256)
            .build()
            .unwrap();
        Cluster::new(cfg, SimParams::default())
    }

    #[test]
    fn axpy_computes_correctly() {
        let mut c = cluster();
        let kernel = Axpy::new(1024, 5);
        let cycles = kernel.run(&mut c, 10_000_000).expect("axpy failed");
        assert!(cycles > 0);
    }

    #[test]
    fn axpy_streams_with_low_conflict_rate() {
        let mut c = cluster();
        let kernel = Axpy::new(1024, 5);
        kernel.run(&mut c, 10_000_000).unwrap();
        let stats = c.stats();
        let accesses: u64 = stats.accesses_by_class().iter().sum();
        let conflicts = stats.total_conflicts();
        assert!(
            (conflicts as f64) < 0.25 * accesses as f64,
            "streaming kernel conflicted too much: {conflicts}/{accesses}"
        );
    }

    #[test]
    fn axpy_rejects_indivisible_length() {
        let c = cluster();
        let kernel = Axpy::new(1000, 5); // not a multiple of 16
        assert!(matches!(
            kernel.program(&c),
            Err(KernelError::BadShape { .. })
        ));
    }

    #[test]
    fn per_core_throughput_is_reasonable() {
        let mut c = cluster();
        let kernel = Axpy::new(2048, 3);
        let cycles = kernel.run(&mut c, 10_000_000).unwrap();
        let elems_per_core = 2048 / c.config().num_cores();
        let cpe = cycles as f64 / elems_per_core as f64;
        // 6 issue slots per element plus stalls.
        assert!((5.0..12.0).contains(&cpe), "cycles per element {cpe:.2}");
    }
}
