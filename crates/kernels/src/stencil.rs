//! Analytic phase model for a blocked 2D stencil (Jacobi-style 3x3
//! relaxation) over an off-chip image.
//!
//! The paper analyzes its SPM-capacity benefit on a *compute-bound*
//! matmul and notes that "benefits on memory bound kernels are obviously
//! larger". This model quantifies that remark: a stencil does `O(t²)`
//! work per `O(t²)` traffic (no `t`-fold reuse like matmul), so memory
//! phases dominate, and bigger tiles help through two mechanisms only —
//! the shrinking halo ratio `((t+2)² / t²)` and the amortized phase
//! overhead. The capacity benefit is smaller per tile-size doubling than
//! matmul's, but the *bandwidth sensitivity* is far larger, which is
//! exactly the claimed effect.

use mempool_arch::SpmCapacity;

/// The stencil phase model.
///
/// An `N x N` image resides off-chip; each phase loads a `(t+2) x (t+2)`
/// input tile (the `t x t` output tile plus its halo), all cores relax it
/// (9 multiply-accumulates per point), and the output tile is stored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilPhaseModel {
    /// Image dimension.
    pub n: u64,
    /// Number of cores sharing a compute phase.
    pub num_cores: u64,
    /// Issue-slot cost of one stencil point (9 MACs plus addressing).
    pub cycles_per_point: f64,
    /// Static overhead per phase (loop setup plus barrier).
    pub phase_overhead: f64,
}

impl StencilPhaseModel {
    /// The model with constants consistent with the matmul measurements
    /// (a 3x3 stencil point costs about nine MAC slots plus addressing).
    pub fn with_measured_defaults() -> Self {
        StencilPhaseModel {
            n: SpmCapacity::MATMUL_MATRIX_DIM,
            num_cores: 256,
            cycles_per_point: 30.0,
            phase_overhead: 9_500.0,
        }
    }

    /// Stencil tile dimension for a capacity: the double-buffered input
    /// and output tiles must fit, `2 * ((t+2)² + t²) * 4 <= capacity`.
    /// Unlike matmul, the tile dimension need not divide across the cores
    /// evenly (rows are distributed with a remainder band), so the exact
    /// maximum is used.
    pub fn tile_dim(&self, capacity: SpmCapacity) -> u64 {
        let budget = capacity.bytes() / 8; // two buffers of two tiles
                                           // (t+2)^2 + t^2 ~ 2t^2 for the sizes involved; solve exactly by
                                           // scanning down from the approximation.
        let mut t = ((budget / 2) as f64).sqrt() as u64 + 1;
        while (t + 2) * (t + 2) + t * t > budget {
            t -= 1;
        }
        t
    }

    /// Cycles of one memory phase: the haloed input tile in, at the
    /// off-chip bandwidth.
    pub fn memory_phase_cycles(&self, t: u64, bytes_per_cycle: u32) -> f64 {
        (4 * (t + 2) * (t + 2)) as f64 / bytes_per_cycle as f64
    }

    /// Cycles of one compute phase.
    pub fn compute_phase_cycles(&self, t: u64) -> f64 {
        (t * t) as f64 / self.num_cores as f64 * self.cycles_per_point + self.phase_overhead
    }

    /// Cycles to store one output tile.
    pub fn store_cycles(&self, t: u64, bytes_per_cycle: u32) -> f64 {
        (4 * t * t) as f64 / bytes_per_cycle as f64
    }

    /// Total cycles for one full sweep over the image.
    pub fn total_cycles(&self, capacity: SpmCapacity, bytes_per_cycle: u32) -> f64 {
        let t = self.tile_dim(capacity);
        let tiles = (self.n as f64 / t as f64).ceil();
        tiles
            * tiles
            * (self.memory_phase_cycles(t, bytes_per_cycle)
                + self.compute_phase_cycles(t)
                + self.store_cycles(t, bytes_per_cycle))
    }

    /// Cycle-count speedup relative to a reference point.
    pub fn speedup(
        &self,
        capacity: SpmCapacity,
        bytes_per_cycle: u32,
        ref_capacity: SpmCapacity,
        ref_bytes_per_cycle: u32,
    ) -> f64 {
        self.total_cycles(ref_capacity, ref_bytes_per_cycle)
            / self.total_cycles(capacity, bytes_per_cycle)
    }

    /// Fraction of the runtime spent moving data (memory-boundedness).
    pub fn memory_fraction(&self, capacity: SpmCapacity, bytes_per_cycle: u32) -> f64 {
        let t = self.tile_dim(capacity);
        let mem =
            self.memory_phase_cycles(t, bytes_per_cycle) + self.store_cycles(t, bytes_per_cycle);
        mem / (mem + self.compute_phase_cycles(t))
    }
}

impl Default for StencilPhaseModel {
    fn default() -> Self {
        Self::with_measured_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::PhaseModel;

    #[test]
    fn tile_dims_fit_their_buffers_tightly() {
        let model = StencilPhaseModel::with_measured_defaults();
        for cap in SpmCapacity::ALL {
            let t = model.tile_dim(cap);
            let bytes = 8 * ((t + 2) * (t + 2) + t * t);
            assert!(bytes <= cap.bytes(), "{cap}: t = {t} overflows");
            // Tight: one more row would not fit.
            let t1 = t + 1;
            assert!(
                8 * ((t1 + 2) * (t1 + 2) + t1 * t1) > cap.bytes(),
                "{cap}: t = {t} is not maximal"
            );
            assert!(t >= 250, "{cap}: t = {t} suspiciously small");
        }
    }

    #[test]
    fn stencil_is_memory_bound_where_matmul_is_not() {
        let stencil = StencilPhaseModel::with_measured_defaults();
        // At the realistic 16 B/cycle, the stencil spends most of its time
        // on data movement.
        let frac = stencil.memory_fraction(SpmCapacity::MiB1, 16);
        assert!(frac > 0.5, "stencil memory fraction {frac:.2}");
        // While matmul at the same point is compute-bound.
        let matmul = PhaseModel::with_measured_defaults();
        let t = SpmCapacity::MiB1.matmul_tile_dim();
        let mm_frac = matmul.memory_phase_cycles(t, 16)
            / (matmul.memory_phase_cycles(t, 16) + matmul.compute_phase_cycles(t));
        assert!(mm_frac < 0.2, "matmul memory fraction {mm_frac:.2}");
    }

    #[test]
    fn bandwidth_sensitivity_exceeds_matmuls() {
        // The paper's remark: memory-bound kernels gain more from the
        // memory system. Quadrupling the bandwidth must help the stencil
        // far more than the matmul.
        let stencil = StencilPhaseModel::with_measured_defaults();
        let matmul = PhaseModel::with_measured_defaults();
        let stencil_gain = stencil.speedup(SpmCapacity::MiB1, 16, SpmCapacity::MiB1, 4);
        let matmul_gain = matmul.speedup(SpmCapacity::MiB1, 16, SpmCapacity::MiB1, 4);
        assert!(
            stencil_gain > 1.5 * matmul_gain,
            "stencil bandwidth gain {stencil_gain:.2} vs matmul {matmul_gain:.2}"
        );
    }

    #[test]
    fn capacity_still_helps_via_halo_and_overhead() {
        let model = StencilPhaseModel::with_measured_defaults();
        for bw in [4u32, 16, 64] {
            let s = model.speedup(SpmCapacity::MiB8, bw, SpmCapacity::MiB1, bw);
            assert!(
                (1.0..1.6).contains(&s),
                "8 MiB vs 1 MiB at {bw} B/c: {s:.3}"
            );
        }
    }

    #[test]
    fn capacity_benefit_flips_direction_vs_matmul() {
        // Emergent contrast with Figure 6: matmul's capacity benefit
        // *shrinks* with bandwidth (it comes from data reuse), while the
        // stencil's *grows* (at high bandwidth it is phase-overhead-bound,
        // and big tiles amortize the barrier).
        let stencil = StencilPhaseModel::with_measured_defaults();
        let matmul = PhaseModel::with_measured_defaults();
        let st_low = stencil.speedup(SpmCapacity::MiB8, 4, SpmCapacity::MiB1, 4);
        let st_high = stencil.speedup(SpmCapacity::MiB8, 64, SpmCapacity::MiB1, 64);
        let mm_low = matmul.speedup(SpmCapacity::MiB8, 4, SpmCapacity::MiB1, 4);
        let mm_high = matmul.speedup(SpmCapacity::MiB8, 64, SpmCapacity::MiB1, 64);
        assert!(st_high > st_low, "stencil: {st_low:.3} -> {st_high:.3}");
        assert!(mm_high < mm_low, "matmul: {mm_low:.3} -> {mm_high:.3}");
    }

    #[test]
    fn memory_fraction_falls_with_bandwidth() {
        let model = StencilPhaseModel::with_measured_defaults();
        let mut last = 1.0;
        for bw in [4u32, 8, 16, 32, 64] {
            let f = model.memory_fraction(SpmCapacity::MiB4, bw);
            assert!(f < last);
            last = f;
        }
    }
}
