//! Matrix transpose in the SPM — the classic bank-conflict stress test.
//!
//! Reading a matrix row-wise while writing it column-wise makes one of the
//! two access streams stride through the interleaved banks with the matrix
//! dimension as its step. When that dimension is a multiple of the bank
//! count, the writes all land in the same bank and serialize — exactly the
//! pathology word-level interleaving is supposed to prevent for unit
//! strides. The kernel and its tests document this boundary of the
//! architecture.

use mempool_isa::Program;
use mempool_sim::Cluster;

use crate::workload::{Kernel, KernelError};

/// The transpose kernel: `out[j][i] = in[i][j]` for an `n x n` matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transpose {
    n: u32,
}

impl Transpose {
    /// Creates an `n x n` transpose.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `n * 4` exceeds the post-increment limit.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "matrix dimension must be nonzero");
        assert!(
            n * 4 <= 2047,
            "dimension limited by the 12-bit post-increment"
        );
        Transpose { n }
    }

    /// Matrix dimension.
    pub fn n(&self) -> u32 {
        self.n
    }

    fn layout(&self, cluster: &Cluster) -> (u32, u32) {
        let base = cluster.storage().map().interleaved_base();
        (base, base + self.n * self.n * 4)
    }

    fn value(&self, i: u32, j: u32) -> u32 {
        i * self.n + j + 1
    }
}

impl Kernel for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn program(&self, cluster: &Cluster) -> Result<Program, KernelError> {
        let cores = cluster.config().num_cores();
        let n = self.n;
        if !n.is_multiple_of(cores) {
            return Err(KernelError::BadShape {
                detail: format!("n = {n} must be a multiple of {cores} cores"),
            });
        }
        let rows_per_core = n / cores;
        let (input, output) = self.layout(cluster);
        let n4 = n * 4;
        // Each core reads its rows sequentially (unit stride through the
        // banks) and writes them as columns (stride n words).
        let src = format!(
            r#"
                csrr t0, mhartid
                li   t1, {rows_per_core}
                mul  t2, t0, t1            # first row
                add  t3, t2, t1            # end row
                li   s3, {n4}
            row_loop:
                mul  s0, t2, s3
                li   s4, {input}
                add  s0, s0, s4            # read ptr: in[row][0]
                slli s1, t2, 2
                li   s5, {output}
                add  s1, s1, s5            # write ptr: out[0][row]
                li   t4, {n}
            elem_loop:
                p.lw a0, 4(s0!)
                p.sw a0, {n4}(s1!)
                addi t4, t4, -1
                bnez t4, elem_loop
                addi t2, t2, 1
                blt  t2, t3, row_loop
                wfi
            "#,
        );
        Ok(Program::assemble(&src)?)
    }

    fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError> {
        let (input, output) = self.layout(cluster);
        let n = self.n;
        for i in 0..n {
            for j in 0..n {
                cluster.write_spm_word(input + (i * n + j) * 4, self.value(i, j))?;
                cluster.write_spm_word(output + (i * n + j) * 4, 0)?;
            }
        }
        Ok(())
    }

    fn verify(&self, cluster: &Cluster) -> Result<(), KernelError> {
        let (_, output) = self.layout(cluster);
        let n = self.n;
        for i in 0..n {
            for j in 0..n {
                let got = cluster.read_spm_word(output + (j * n + i) * 4)?;
                let expected = self.value(i, j);
                if got != expected {
                    return Err(KernelError::Mismatch {
                        detail: format!("out[{j}][{i}] = {got}, expected {expected}"),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::ClusterConfig;
    use mempool_sim::SimParams;

    fn cluster() -> Cluster {
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(256)
            .build()
            .unwrap();
        Cluster::new(cfg, SimParams::default())
    }

    #[test]
    fn transpose_is_correct() {
        let mut c = cluster();
        Transpose::new(32)
            .run(&mut c, 10_000_000)
            .expect("transpose failed");
    }

    #[test]
    fn power_of_two_dimension_conflicts_badly() {
        // n = 64 equals the bank count: every column write of a core hits
        // the same bank. n = 48 (not a divisor-aligned stride) spreads.
        let mut aligned = cluster();
        Transpose::new(64).run(&mut aligned, 10_000_000).unwrap();
        let aligned_stats = aligned.stats();
        let aligned_rate = aligned_stats.total_conflicts() as f64
            / aligned_stats.accesses_by_class().iter().sum::<u64>() as f64;

        let mut skewed = cluster();
        Transpose::new(48).run(&mut skewed, 10_000_000).unwrap();
        let skewed_stats = skewed.stats();
        let skewed_rate = skewed_stats.total_conflicts() as f64
            / skewed_stats.accesses_by_class().iter().sum::<u64>() as f64;

        assert!(
            aligned_rate > 2.0 * skewed_rate,
            "bank-aligned stride must conflict far more: {aligned_rate:.3} vs {skewed_rate:.3}"
        );
    }

    #[test]
    fn rejects_indivisible_dimension() {
        let c = cluster();
        assert!(matches!(
            Transpose::new(40).program(&c),
            Err(KernelError::BadShape { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "post-increment")]
    fn oversized_dimension_panics() {
        let _ = Transpose::new(512);
    }
}
