//! Blocked matrix multiplication: codegen, orchestration, and the analytic
//! phase model of Section VI-A.

use mempool_arch::SpmCapacity;
use mempool_isa::Program;
use mempool_sim::Cluster;

use crate::workload::{Kernel, KernelError};

/// One compute phase: all cores cooperatively compute
/// `C += A x B` on three `p x p` word tiles resident in the SPM's
/// interleaved region (`A`, then `B`, then `C`, densely packed).
///
/// The generated inner loop follows MemPool's hand-optimized kernels:
/// post-incrementing loads walk a row of `A` and two columns of `B`,
/// feeding `p.mac` accumulators for a 1x2 output block, with the k-loop
/// unrolled twice — about 3 issue slots per multiply-accumulate.
/// Inner-loop code-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Blocking {
    /// Straightforward loop: one load of `A`, one of `B`, one `p.mac`,
    /// and the loop bookkeeping per multiply-accumulate (~6 issue slots).
    Naive,
    /// The hand-optimized shape MemPool's kernels use: a 1x2 output block
    /// with the k-loop unrolled twice (~3 issue slots per MAC).
    #[default]
    OneByTwo,
    /// A 1x4 output block: five loads in flight before the first use,
    /// enough to hide even the 5-cycle remote latency of the full
    /// 256-core cluster (where 3/4 of interleaved accesses leave the
    /// group-local neighborhood).
    OneByFour,
    /// The 1x4 block plus a per-core rotation of the column loop. The
    /// B-column streams stride the banks by `p` words, so with `p` a
    /// multiple of the bank count every core's stream cycles through the
    /// same few banks; rotating each core's starting column spreads the
    /// streams over all banks — the staggering trick MemPool's
    /// hand-written kernels use. Requires a power-of-two tile dimension.
    Staggered,
}

/// One compute phase over three `p x p` word tiles resident in the SPM
/// (see the module docs); the inner-loop shape is selected by
/// [`Blocking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputePhase {
    p: u32,
    /// Explicit `(A, B, C)` tile addresses; `None` uses the default packed
    /// layout at the start of the interleaved region.
    layout: Option<(u32, u32, u32)>,
    blocking: Blocking,
}

impl ComputePhase {
    /// Creates a compute phase over `p x p` tiles in the default layout.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a positive multiple of 4 or exceeds 511 (the
    /// post-increment immediate limit).
    pub fn new(p: u32) -> Self {
        assert!(
            p > 0 && p.is_multiple_of(4),
            "tile dimension must be a multiple of 4"
        );
        assert!(
            p <= 511,
            "tile dimension limited by the 12-bit post-increment"
        );
        ComputePhase {
            p,
            layout: None,
            blocking: Blocking::OneByTwo,
        }
    }

    /// Selects the inner-loop strategy (for the code-quality ablation).
    pub fn with_blocking(mut self, blocking: Blocking) -> Self {
        self.blocking = blocking;
        self
    }

    /// The inner-loop strategy in use.
    pub fn blocking(&self) -> Blocking {
        self.blocking
    }

    /// Creates a compute phase reading/writing explicitly placed tiles
    /// (used by the double-buffered orchestration).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::new`].
    pub fn with_layout(p: u32, a: u32, b: u32, c: u32) -> Self {
        let mut phase = Self::new(p);
        phase.layout = Some((a, b, c));
        phase
    }

    /// Tile dimension.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Byte size of one `p x p` word tile.
    pub fn tile_bytes(&self) -> u32 {
        self.p * self.p * 4
    }

    /// SPM addresses of the `A`, `B`, and `C` tiles.
    pub fn tile_addrs(&self, cluster: &Cluster) -> (u32, u32, u32) {
        self.layout.unwrap_or_else(|| {
            let base = cluster.storage().map().interleaved_base();
            (base, base + self.tile_bytes(), base + 2 * self.tile_bytes())
        })
    }

    /// Total multiply-accumulates of one phase.
    pub fn total_macs(&self) -> u64 {
        (self.p as u64).pow(3)
    }

    /// Generates the per-core program text.
    fn source(&self, cluster: &Cluster) -> Result<String, KernelError> {
        let cores = cluster.config().num_cores();
        let p = self.p;
        if !p.is_multiple_of(cores) {
            return Err(KernelError::BadShape {
                detail: format!("tile dimension {p} must be a multiple of {cores} cores"),
            });
        }
        let rows_per_core = p / cores;
        let (a, b, c) = self.tile_addrs(cluster);
        let p4 = p * 4;
        if self.blocking == Blocking::OneByFour {
            if !p.is_multiple_of(4) {
                return Err(KernelError::BadShape {
                    detail: format!("tile dimension {p} must be a multiple of 4"),
                });
            }
            return Ok(format!(
                r#"
                    csrr t0, mhartid
                    li   t1, {rows_per_core}
                    mul  t2, t0, t1            # i = first row
                    add  t3, t2, t1            # end row
                    li   s3, {p4}
                    li   s4, {a}
                    li   s5, {b}
                    li   s6, {c}
                    li   t6, {p}
                i_loop:
                    li   t5, 0                 # j
                j_loop:
                    mul  s7, t2, s3            # i * p * 4
                    add  s0, s7, s4            # a_ptr
                    slli a7, t5, 2
                    add  s1, a7, s5            # b_ptr columns j..j+3
                    addi s2, s1, 4
                    addi s9, s1, 8
                    addi s11, s1, 12
                    add  a7, s7, s6
                    slli s8, t5, 2
                    add  s8, a7, s8            # c_ptr
                    lw   a0, 0(s8)
                    lw   a1, 4(s8)
                    lw   a2, 8(s8)
                    lw   a3, 12(s8)
                    li   t4, {p}
                k_loop:
                    p.lw a4, 4(s0!)
                    p.lw a5, {p4}(s1!)
                    p.lw a6, {p4}(s2!)
                    p.lw a7, {p4}(s9!)
                    p.lw s10, {p4}(s11!)
                    p.mac a0, a4, a5
                    p.mac a1, a4, a6
                    p.mac a2, a4, a7
                    p.mac a3, a4, s10
                    addi t4, t4, -1
                    bnez t4, k_loop
                    sw   a0, 0(s8)
                    sw   a1, 4(s8)
                    sw   a2, 8(s8)
                    sw   a3, 12(s8)
                    addi t5, t5, 4
                    blt  t5, t6, j_loop
                    addi t2, t2, 1
                    blt  t2, t3, i_loop
                    wfi
                "#,
            ));
        }
        if self.blocking == Blocking::Staggered {
            if !p.is_power_of_two() {
                return Err(KernelError::BadShape {
                    detail: format!("staggered blocking needs a power-of-two tile, got {p}"),
                });
            }
            return Ok(format!(
                r#"
                    csrr t0, mhartid
                    li   t1, {rows_per_core}
                    mul  t2, t0, t1            # i = first row
                    add  t3, t2, t1            # end row
                    li   s3, {p4}
                    li   s4, {a}
                    li   s5, {b}
                    li   s6, {c}
                    li   t6, {p}
                    slli t5, t0, 2             # j0 = (hartid * 4) mod p
                    andi t5, t5, {p_mask}
                i_loop:
                    li   t0, {j_iters}         # hartid no longer needed
                j_loop:
                    mul  s7, t2, s3            # i * p * 4
                    add  s0, s7, s4            # a_ptr
                    slli a7, t5, 2
                    add  s1, a7, s5            # b_ptr columns j..j+3
                    addi s2, s1, 4
                    addi s9, s1, 8
                    addi s11, s1, 12
                    add  a7, s7, s6
                    slli s8, t5, 2
                    add  s8, a7, s8            # c_ptr
                    lw   a0, 0(s8)
                    lw   a1, 4(s8)
                    lw   a2, 8(s8)
                    lw   a3, 12(s8)
                    li   t4, {p}
                k_loop:
                    p.lw a4, 4(s0!)
                    p.lw a5, {p4}(s1!)
                    p.lw a6, {p4}(s2!)
                    p.lw a7, {p4}(s9!)
                    p.lw s10, {p4}(s11!)
                    p.mac a0, a4, a5
                    p.mac a1, a4, a6
                    p.mac a2, a4, a7
                    p.mac a3, a4, s10
                    addi t4, t4, -1
                    bnez t4, k_loop
                    sw   a0, 0(s8)
                    sw   a1, 4(s8)
                    sw   a2, 8(s8)
                    sw   a3, 12(s8)
                    addi t5, t5, 4
                    blt  t5, t6, no_wrap
                    li   t5, 0
                no_wrap:
                    addi t0, t0, -1
                    bnez t0, j_loop
                    addi t2, t2, 1
                    blt  t2, t3, i_loop
                    wfi
                "#,
                p_mask = p - 1,
                j_iters = p / 4,
            ));
        }
        if self.blocking == Blocking::Naive {
            return Ok(format!(
                r#"
                    csrr t0, mhartid
                    li   t1, {rows_per_core}
                    mul  t2, t0, t1            # i = first row
                    add  t3, t2, t1            # end row
                    li   s3, {p4}
                    li   s4, {a}
                    li   s5, {b}
                    li   s6, {c}
                    li   t6, {p}
                i_loop:
                    li   t5, 0                 # j
                j_loop:
                    mul  s7, t2, s3
                    add  s0, s7, s4            # a_ptr
                    slli a7, t5, 2
                    add  s1, a7, s5            # b_ptr
                    add  a7, s7, s6
                    slli s9, t5, 2
                    add  s8, a7, s9            # c_ptr
                    lw   a0, 0(s8)
                    li   t4, {p}
                k_loop:
                    p.lw a4, 4(s0!)
                    p.lw a5, {p4}(s1!)
                    p.mac a0, a4, a5
                    addi t4, t4, -1
                    bnez t4, k_loop
                    sw   a0, 0(s8)
                    addi t5, t5, 1
                    blt  t5, t6, j_loop
                    addi t2, t2, 1
                    blt  t2, t3, i_loop
                    wfi
                "#,
            ));
        }
        Ok(format!(
            r#"
                csrr t0, mhartid
                li   t1, {rows_per_core}
                mul  t2, t0, t1            # i = first row
                add  t3, t2, t1            # end row
                li   s3, {p4}
                li   s4, {a}
                li   s5, {b}
                li   s6, {c}
                li   t6, {p}
            i_loop:
                li   t5, 0                 # j
            j_loop:
                mul  s7, t2, s3            # i * p * 4
                add  s0, s7, s4            # a_ptr
                slli a7, t5, 2
                add  s1, a7, s5            # b_ptr (column j)
                addi s2, s1, 4             # b_ptr (column j+1)
                add  a7, s7, s6
                slli s9, t5, 2
                add  s8, a7, s9            # c_ptr
                lw   a0, 0(s8)             # acc0 = C[i][j]
                lw   a1, 4(s8)             # acc1 = C[i][j+1]
                li   t4, {half_p}          # k-loop, unrolled by 2
            k_loop:
                p.lw a4, 4(s0!)
                p.lw a5, {p4}(s1!)
                p.lw a6, {p4}(s2!)
                p.mac a0, a4, a5
                p.mac a1, a4, a6
                p.lw a4, 4(s0!)
                p.lw a5, {p4}(s1!)
                p.lw a6, {p4}(s2!)
                p.mac a0, a4, a5
                p.mac a1, a4, a6
                addi t4, t4, -1
                bnez t4, k_loop
                sw   a0, 0(s8)
                sw   a1, 4(s8)
                addi t5, t5, 2
                blt  t5, t6, j_loop
                addi t2, t2, 1
                blt  t2, t3, i_loop
                wfi
            "#,
            half_p = p / 2,
        ))
    }
}

impl Kernel for ComputePhase {
    fn name(&self) -> &'static str {
        "matmul-compute-phase"
    }

    fn program(&self, cluster: &Cluster) -> Result<Program, KernelError> {
        Ok(Program::assemble(&self.source(cluster)?)?)
    }

    fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError> {
        let (a, b, c) = self.tile_addrs(cluster);
        let p = self.p;
        for i in 0..p {
            for j in 0..p {
                let off = (i * p + j) * 4;
                cluster.write_spm_word(a + off, host_a(i, j))?;
                cluster.write_spm_word(b + off, host_b(i, j))?;
                cluster.write_spm_word(c + off, 0)?;
            }
        }
        Ok(())
    }

    fn verify(&self, cluster: &Cluster) -> Result<(), KernelError> {
        let (_, _, c) = self.tile_addrs(cluster);
        let p = self.p;
        for i in 0..p {
            for j in 0..p {
                let mut expected = 0u32;
                for k in 0..p {
                    expected = expected.wrapping_add(host_a(i, k).wrapping_mul(host_b(k, j)));
                }
                let got = cluster.read_spm_word(c + (i * p + j) * 4)?;
                if got != expected {
                    return Err(KernelError::Mismatch {
                        detail: format!("C[{i}][{j}] = {got}, expected {expected}"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Deterministic small test values (kept small so u32 accumulation is
/// far from wrapping in typical tile sizes).
fn host_a(i: u32, j: u32) -> u32 {
    (i * 7 + j * 3 + 1) % 17
}

fn host_b(i: u32, j: u32) -> u32 {
    (i * 5 + j * 11 + 2) % 13
}

/// Full blocked matmul on the simulator: `C = A x B` with `M x M`
/// operands in external memory and `t x t` tiles in the SPM, alternating
/// DMA memory phases and simulated compute phases — a scaled-down version
/// of the paper's workload for examples and integration tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedMatmul {
    m: u32,
    phase: ComputePhase,
}

/// Cycle breakdown of a [`BlockedMatmul`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatmulCycles {
    /// Cycles in DMA memory phases (tile loads and stores).
    pub memory: u64,
    /// Cycles in compute phases.
    pub compute: u64,
}

impl MatmulCycles {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.memory + self.compute
    }
}

impl BlockedMatmul {
    /// External-memory byte offsets of the `A`, `B`, and `C` matrices.
    const EXT_A: u64 = 0;

    /// Creates a blocked matmul of an `m x m` product with `t x t` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not divide `m` (the paper picks `M` as the least
    /// common multiple of all tile sizes for exactly this reason).
    pub fn new(m: u32, t: u32) -> Self {
        assert!(
            m.is_multiple_of(t),
            "tile dimension must divide the matrix dimension"
        );
        BlockedMatmul {
            m,
            phase: ComputePhase::new(t),
        }
    }

    /// Matrix dimension.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Tile dimension.
    pub fn t(&self) -> u32 {
        self.phase.p()
    }

    fn ext_b(&self) -> u64 {
        Self::EXT_A + (self.m as u64 * self.m as u64 * 4)
    }

    fn ext_c(&self) -> u64 {
        self.ext_b() + (self.m as u64 * self.m as u64 * 4)
    }

    /// Writes the input matrices into external memory.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError> {
        let m = self.m;
        for i in 0..m {
            for j in 0..m {
                let off = (i as u64 * m as u64 + j as u64) * 4;
                cluster
                    .storage_mut()
                    .write_external_word(Self::EXT_A + off, host_a(i, j));
                cluster
                    .storage_mut()
                    .write_external_word(self.ext_b() + off, host_b(i, j));
            }
        }
        Ok(())
    }

    /// Runs the full blocked computation, returning the cycle breakdown.
    ///
    /// # Errors
    ///
    /// Propagates codegen, simulation, and DMA errors.
    pub fn run(&self, cluster: &mut Cluster) -> Result<MatmulCycles, KernelError> {
        let t = self.t();
        let m = self.m;
        let steps = m / t;
        let (a_spm, b_spm, c_spm) = self.phase.tile_addrs(cluster);
        let row_bytes = t * 4;
        let ext_stride = m as u64 * 4;
        let program = self.phase.program(cluster)?;
        cluster.load_program(program);
        cluster.preload_icaches();

        let mut cycles = MatmulCycles::default();
        let tile_off = |base: u64, ti: u32, tj: u32| {
            base + (ti as u64 * t as u64 * m as u64 + tj as u64 * t as u64) * 4
        };
        for out_i in 0..steps {
            for out_j in 0..steps {
                // Zero the C tile (part of the store/setup traffic; charged
                // to the memory phase as in the paper's accounting).
                for w in (0..t * t * 4).step_by(4) {
                    cluster.write_spm_word(c_spm + w, 0)?;
                }
                for k in 0..steps {
                    cycles.memory += cluster.dma_tile(
                        tile_off(Self::EXT_A, out_i, k),
                        ext_stride,
                        a_spm,
                        t,
                        row_bytes,
                        true,
                    )?;
                    cycles.memory += cluster.dma_tile(
                        tile_off(self.ext_b(), k, out_j),
                        ext_stride,
                        b_spm,
                        t,
                        row_bytes,
                        true,
                    )?;
                    let start = cluster.cycle();
                    cluster.resume_all(0)?;
                    cluster.run(u64::MAX / 2)?;
                    cycles.compute += cluster.cycle() - start;
                }
                cycles.memory += cluster.dma_tile(
                    tile_off(self.ext_c(), out_i, out_j),
                    ext_stride,
                    c_spm,
                    t,
                    row_bytes,
                    false,
                )?;
            }
        }
        Ok(cycles)
    }

    /// Verifies the result in external memory against the host reference.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Mismatch`] on the first wrong element.
    pub fn verify(&self, cluster: &Cluster) -> Result<(), KernelError> {
        let m = self.m;
        for i in 0..m {
            for j in 0..m {
                let mut expected = 0u32;
                for k in 0..m {
                    expected = expected.wrapping_add(host_a(i, k).wrapping_mul(host_b(k, j)));
                }
                let got = cluster
                    .storage()
                    .read_external_word(self.ext_c() + (i as u64 * m as u64 + j as u64) * 4);
                if got != expected {
                    return Err(KernelError::Mismatch {
                        detail: format!("C[{i}][{j}] = {got}, expected {expected}"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A double-buffered variant of [`BlockedMatmul`]: while the cores compute
/// on one pair of input tiles, the DMA prefetches the next pair into a
/// second buffer — the overlap extension that
/// [`PhaseModel::total_cycles_overlapped`] models analytically, here
/// executed cycle-accurately.
///
/// SPM layout (interleaved region): `A0 B0 A1 B1 C`, five tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleBufferedMatmul {
    m: u32,
    t: u32,
}

impl DoubleBufferedMatmul {
    /// Creates a double-buffered blocked matmul.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not divide `m`.
    pub fn new(m: u32, t: u32) -> Self {
        assert!(
            m.is_multiple_of(t),
            "tile dimension must divide the matrix dimension"
        );
        let _ = ComputePhase::new(t); // validate t
        DoubleBufferedMatmul { m, t }
    }

    fn buffers(&self, cluster: &Cluster) -> [u32; 5] {
        let base = cluster.storage().map().interleaved_base();
        let tile = self.t * self.t * 4;
        [
            base,
            base + tile,
            base + 2 * tile,
            base + 3 * tile,
            base + 4 * tile,
        ]
    }

    /// Writes the input matrices into external memory (same layout as
    /// [`BlockedMatmul`]).
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError> {
        BlockedMatmul::new(self.m, self.t).setup(cluster)
    }

    /// Runs the double-buffered computation.
    ///
    /// # Errors
    ///
    /// Propagates codegen, simulation, and DMA errors.
    pub fn run(&self, cluster: &mut Cluster) -> Result<MatmulCycles, KernelError> {
        let (m, t) = (self.m, self.t);
        let steps = m / t;
        let [a0, b0, a1, b1, c_spm] = self.buffers(cluster);
        let bufs = [(a0, b0), (a1, b1)];
        let row_bytes = t * 4;
        let ext_stride = m as u64 * 4;
        let ext_b = BlockedMatmul::EXT_A + (m as u64 * m as u64 * 4);
        let ext_c = ext_b + (m as u64 * m as u64 * 4);
        let programs = [
            ComputePhase::with_layout(t, a0, b0, c_spm).program(cluster)?,
            ComputePhase::with_layout(t, a1, b1, c_spm).program(cluster)?,
        ];
        let tile_off = |base: u64, ti: u32, tj: u32| {
            base + (ti as u64 * t as u64 * m as u64 + tj as u64 * t as u64) * 4
        };

        let mut cycles = MatmulCycles::default();
        for out_i in 0..steps {
            for out_j in 0..steps {
                for w in (0..t * t * 4).step_by(4) {
                    cluster.write_spm_word(c_spm + w, 0)?;
                }
                // Exposed first fill into buffer 0.
                let start = cluster.cycle();
                let done = cluster.dma_tile_async(
                    tile_off(BlockedMatmul::EXT_A, out_i, 0),
                    ext_stride,
                    bufs[0].0,
                    t,
                    row_bytes,
                    true,
                )?;
                let done = done.max(cluster.dma_tile_async(
                    tile_off(ext_b, 0, out_j),
                    ext_stride,
                    bufs[0].1,
                    t,
                    row_bytes,
                    true,
                )?);
                cluster.advance_to(done);
                cycles.memory += cluster.cycle() - start;

                for k in 0..steps {
                    let cur = (k % 2) as usize;
                    // Prefetch the next pair into the other buffer while
                    // computing on this one.
                    let prefetch_done = if k + 1 < steps {
                        let nxt = bufs[1 - cur];
                        let d1 = cluster.dma_tile_async(
                            tile_off(BlockedMatmul::EXT_A, out_i, k + 1),
                            ext_stride,
                            nxt.0,
                            t,
                            row_bytes,
                            true,
                        )?;
                        let d2 = cluster.dma_tile_async(
                            tile_off(ext_b, k + 1, out_j),
                            ext_stride,
                            nxt.1,
                            t,
                            row_bytes,
                            true,
                        )?;
                        Some(d1.max(d2))
                    } else {
                        None
                    };
                    let start = cluster.cycle();
                    cluster.load_program(programs[cur].clone());
                    cluster.preload_icaches();
                    cluster.resume_all(0)?;
                    cluster.run(u64::MAX / 2)?;
                    cycles.compute += cluster.cycle() - start;
                    if let Some(done) = prefetch_done {
                        let wait_start = cluster.cycle();
                        cluster.advance_to(done);
                        cycles.memory += cluster.cycle() - wait_start;
                    }
                }
                let start = cluster.cycle();
                let done = cluster.dma_tile_async(
                    tile_off(ext_c, out_i, out_j),
                    ext_stride,
                    c_spm,
                    t,
                    row_bytes,
                    false,
                )?;
                cluster.advance_to(done);
                cycles.memory += cluster.cycle() - start;
            }
        }
        Ok(cycles)
    }

    /// Verifies the result (same reference as [`BlockedMatmul`]).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Mismatch`] on the first wrong element.
    pub fn verify(&self, cluster: &Cluster) -> Result<(), KernelError> {
        BlockedMatmul::new(self.m, self.t).verify(cluster)
    }
}

/// The paper's analytic cycle model for the full `M = 326400` problem
/// (Section VI-A), parameterized by constants measured on the simulator.
///
/// Per output tile, `M/t` iterations each load two `t x t` input tiles
/// (8t² bytes at the off-chip bandwidth) and compute `t³`
/// multiply-accumulates across the cores, then the output tile is stored
/// once. Every input element is loaded exactly `M/t` times, so larger
/// SPMs mean more reuse *and* fewer synchronization overheads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseModel {
    /// Matrix dimension (the paper: 326400).
    pub m: u64,
    /// Number of cores sharing a compute phase (the paper: 256).
    pub num_cores: u64,
    /// Issue-slot cost of one multiply-accumulate, including pipeline and
    /// banking stalls — measured with [`crate::measure`].
    pub cycles_per_mac: f64,
    /// Static overhead per compute phase: loop setup plus the barrier —
    /// measured with [`crate::measure`].
    pub phase_overhead: f64,
}

impl PhaseModel {
    /// The model with the constants measured on this repository's
    /// simulator (16-core instance, barrier cost extrapolated linearly to
    /// 256 cores; see `EXPERIMENTS.md`). The 3.2 cycles/MAC figure is
    /// additionally validated at full 256-core scale by the
    /// bank-conflict-free [`Blocking::Staggered`] kernel, which measures
    /// 3.23 cycles/MAC (`tests/full_scale.rs`).
    pub fn with_measured_defaults() -> Self {
        PhaseModel {
            m: SpmCapacity::MATMUL_MATRIX_DIM,
            num_cores: 256,
            cycles_per_mac: 3.2,
            phase_overhead: 9_500.0,
        }
    }

    /// Cycles of one memory phase (two `t x t` input tiles over the
    /// off-chip port).
    pub fn memory_phase_cycles(&self, t: u64, bytes_per_cycle: u32) -> f64 {
        (8 * t * t) as f64 / bytes_per_cycle as f64
    }

    /// Cycles of one compute phase (`t³` MACs over all cores, plus the
    /// static overhead).
    pub fn compute_phase_cycles(&self, t: u64) -> f64 {
        (t * t * t) as f64 / self.num_cores as f64 * self.cycles_per_mac + self.phase_overhead
    }

    /// Cycles to store one output tile.
    pub fn store_cycles(&self, t: u64, bytes_per_cycle: u32) -> f64 {
        (4 * t * t) as f64 / bytes_per_cycle as f64
    }

    /// Total cycles of the full `M x M` multiplication for the given SPM
    /// capacity (which fixes the tile size) and off-chip bandwidth.
    pub fn total_cycles(&self, capacity: SpmCapacity, bytes_per_cycle: u32) -> f64 {
        let t = capacity.matmul_tile_dim();
        let tiles = (self.m / t) as f64;
        let per_tile = tiles
            * (self.memory_phase_cycles(t, bytes_per_cycle) + self.compute_phase_cycles(t))
            + self.store_cycles(t, bytes_per_cycle);
        tiles * tiles * per_tile
    }

    /// Total cycles with **double-buffered** memory phases: the DMA for
    /// iteration `k+1` overlaps the compute of iteration `k`, so each of
    /// the `M/t` steps costs `max(memory, compute)` after a one-step
    /// pipeline fill. Double buffering halves the usable tile size
    /// (`t' = t / sqrt(2)` rounded to the core count), trading reuse for
    /// overlap — the paper leaves this extension to future work, and this
    /// model quantifies it.
    pub fn total_cycles_overlapped(&self, capacity: SpmCapacity, bytes_per_cycle: u32) -> f64 {
        // Largest t' <= t/sqrt(2) that is a multiple of the core count.
        let t = capacity.matmul_tile_dim();
        let reduced =
            ((t as f64 / std::f64::consts::SQRT_2) as u64 / self.num_cores).max(1) * self.num_cores;
        let tiles = (self.m as f64 / reduced as f64).ceil();
        let mem = self.memory_phase_cycles(reduced, bytes_per_cycle);
        let compute = self.compute_phase_cycles(reduced);
        let per_tile = mem + tiles * mem.max(compute) + self.store_cycles(reduced, bytes_per_cycle);
        tiles * tiles * per_tile
    }

    /// Cycle-count speedup of `(capacity, bandwidth)` relative to a
    /// reference point — the quantity plotted in Figure 6.
    pub fn speedup(
        &self,
        capacity: SpmCapacity,
        bytes_per_cycle: u32,
        ref_capacity: SpmCapacity,
        ref_bytes_per_cycle: u32,
    ) -> f64 {
        self.total_cycles(ref_capacity, ref_bytes_per_cycle)
            / self.total_cycles(capacity, bytes_per_cycle)
    }
}

impl Default for PhaseModel {
    fn default() -> Self {
        Self::with_measured_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::ClusterConfig;
    use mempool_sim::{Cluster, SimParams};

    fn small_cluster() -> Cluster {
        // 16 cores, enough SPM for three 32x32 tiles (12 KiB + slack).
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(256)
            .build()
            .unwrap();
        Cluster::new(cfg, SimParams::default())
    }

    #[test]
    fn compute_phase_produces_correct_product() {
        let mut cluster = small_cluster();
        let phase = ComputePhase::new(32);
        let cycles = phase.run(&mut cluster, 10_000_000).expect("phase failed");
        assert!(cycles > 0);
    }

    #[test]
    fn compute_phase_efficiency_is_near_three_cycles_per_mac() {
        let mut cluster = small_cluster();
        let phase = ComputePhase::new(32);
        let cycles = phase.run(&mut cluster, 10_000_000).unwrap();
        let macs_per_core = phase.total_macs() / cluster.config().num_cores() as u64;
        let cpm = cycles as f64 / macs_per_core as f64;
        assert!(
            (2.5..4.5).contains(&cpm),
            "cycles per MAC {cpm:.2} out of the expected range"
        );
    }

    #[test]
    fn one_by_four_blocking_is_correct_and_at_least_as_fast() {
        let mut blocked = small_cluster();
        let base_cycles = ComputePhase::new(32).run(&mut blocked, 10_000_000).unwrap();
        let mut deep = small_cluster();
        let deep_cycles = ComputePhase::new(32)
            .with_blocking(Blocking::OneByFour)
            .run(&mut deep, 10_000_000)
            .unwrap();
        assert!(
            (deep_cycles as f64) < 1.1 * base_cycles as f64,
            "1x4 blocking ({deep_cycles}) should not lose to 1x2 ({base_cycles})"
        );
    }

    #[test]
    fn staggered_blocking_is_correct() {
        let mut c = small_cluster();
        ComputePhase::new(32)
            .with_blocking(Blocking::Staggered)
            .run(&mut c, 10_000_000)
            .expect("staggered phase");
    }

    #[test]
    fn staggered_blocking_rejects_non_power_of_two() {
        let c = small_cluster();
        // 48 is a multiple of 16 cores and of 4, but not a power of two.
        let phase = ComputePhase::new(48).with_blocking(Blocking::Staggered);
        assert!(matches!(
            phase.program(&c),
            Err(KernelError::BadShape { .. })
        ));
    }

    #[test]
    fn blocking_ablation_naive_costs_nearly_double() {
        // The register-blocked inner loop is the reason the paper's
        // kernels approach ~3 cycles/MAC; the naive loop pays ~6.
        let mut blocked = small_cluster();
        let phase = ComputePhase::new(32);
        let blocked_cycles = phase.run(&mut blocked, 10_000_000).unwrap();

        let mut naive_cluster = small_cluster();
        let naive = ComputePhase::new(32).with_blocking(Blocking::Naive);
        let naive_cycles = naive.run(&mut naive_cluster, 10_000_000).unwrap();

        let ratio = naive_cycles as f64 / blocked_cycles as f64;
        assert!(
            (1.4..2.3).contains(&ratio),
            "naive/blocked cycle ratio {ratio:.2}"
        );
    }

    #[test]
    fn compute_phase_rejects_indivisible_tiles() {
        let cluster = small_cluster();
        let phase = ComputePhase::new(36); // not a multiple of 16 cores
        assert!(matches!(
            phase.program(&cluster),
            Err(KernelError::BadShape { .. })
        ));
    }

    #[test]
    fn blocked_matmul_end_to_end() {
        let mut cluster = small_cluster();
        let mm = BlockedMatmul::new(64, 32);
        mm.setup(&mut cluster).unwrap();
        let cycles = mm.run(&mut cluster).expect("blocked matmul failed");
        mm.verify(&cluster).expect("verification failed");
        assert!(cycles.memory > 0 && cycles.compute > 0);
    }

    #[test]
    fn higher_bandwidth_shrinks_memory_phase_only() {
        let mut slow = small_cluster();
        let mm = BlockedMatmul::new(64, 32);
        mm.setup(&mut slow).unwrap();
        let slow_cycles = mm.run(&mut slow).unwrap();

        let cfg = slow.config().clone();
        let mut fast = Cluster::new(cfg, SimParams::default().with_offchip_bandwidth(64));
        mm.setup(&mut fast).unwrap();
        let fast_cycles = mm.run(&mut fast).unwrap();
        assert!(fast_cycles.memory < slow_cycles.memory);
        assert_eq!(fast_cycles.compute, slow_cycles.compute);
    }

    #[test]
    fn model_reproduces_figure6_shape() {
        let model = PhaseModel::with_measured_defaults();
        // Paper: 43 % speedup of 8 MiB over 1 MiB at 4 B/cycle; 16 % at
        // 16 B/cycle; 8 % at 64 B/cycle.
        let s4 = model.speedup(SpmCapacity::MiB8, 4, SpmCapacity::MiB1, 4);
        let s16 = model.speedup(SpmCapacity::MiB8, 16, SpmCapacity::MiB1, 16);
        let s64 = model.speedup(SpmCapacity::MiB8, 64, SpmCapacity::MiB1, 64);
        assert!(
            (1.30..1.55).contains(&s4),
            "4 B/c speedup {s4:.3} (paper 1.43)"
        );
        assert!(
            (1.10..1.25).contains(&s16),
            "16 B/c speedup {s16:.3} (paper 1.16)"
        );
        assert!(
            (1.04..1.13).contains(&s64),
            "64 B/c speedup {s64:.3} (paper 1.08)"
        );
        // Monotonicity: speedup shrinks as bandwidth grows.
        assert!(s4 > s16 && s16 > s64);
    }

    #[test]
    fn model_speedup_monotone_in_capacity() {
        let model = PhaseModel::with_measured_defaults();
        for bw in [4, 8, 16, 32, 64] {
            let mut last = 0.0;
            for cap in SpmCapacity::ALL {
                let s = model.speedup(cap, bw, SpmCapacity::MiB1, bw);
                assert!(s >= last, "bw {bw}: {cap} speedup {s} not monotone");
                last = s;
            }
        }
    }

    #[test]
    fn model_memory_phase_scales_inversely_with_bandwidth() {
        let model = PhaseModel::with_measured_defaults();
        let m4 = model.memory_phase_cycles(256, 4);
        let m16 = model.memory_phase_cycles(256, 16);
        assert!((m4 / m16 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn blocked_matmul_requires_divisible_tiles() {
        let _ = BlockedMatmul::new(100, 32);
    }

    #[test]
    fn double_buffered_matmul_is_correct_and_faster_when_memory_bound() {
        // At 4 B/cycle the memory phases dominate; overlapping them with
        // compute must win, and the result must stay correct.
        let cfg = small_cluster().config().clone();
        let seq = BlockedMatmul::new(96, 32);
        let mut c1 = Cluster::new(cfg.clone(), SimParams::default().with_offchip_bandwidth(4));
        seq.setup(&mut c1).unwrap();
        let sequential = seq.run(&mut c1).unwrap();
        seq.verify(&c1).unwrap();

        let dbuf = DoubleBufferedMatmul::new(96, 32);
        let mut c2 = Cluster::new(cfg, SimParams::default().with_offchip_bandwidth(4));
        dbuf.setup(&mut c2).unwrap();
        let overlapped = dbuf.run(&mut c2).unwrap();
        dbuf.verify(&c2)
            .expect("double-buffered result must be correct");

        assert!(
            overlapped.total() < sequential.total(),
            "overlap {o} must beat sequential {s} at 4 B/cycle",
            o = overlapped.total(),
            s = sequential.total()
        );
        // Most of the memory time is hidden: only the first fill and the
        // output store per tile remain exposed.
        assert!(
            (overlapped.memory as f64) < 0.6 * sequential.memory as f64,
            "exposed memory {o} vs sequential {s}",
            o = overlapped.memory,
            s = sequential.memory
        );
    }

    #[test]
    fn overlap_helps_most_when_memory_bound() {
        let model = PhaseModel::with_measured_defaults();
        // Memory-bound regime: small SPM, 4 B/cycle.
        let gain_bound = model.total_cycles(SpmCapacity::MiB1, 4)
            / model.total_cycles_overlapped(SpmCapacity::MiB1, 4);
        // Compute-bound regime: large SPM, 64 B/cycle — overlap cannot pay
        // for the reuse it sacrifices.
        let gain_free = model.total_cycles(SpmCapacity::MiB8, 64)
            / model.total_cycles_overlapped(SpmCapacity::MiB8, 64);
        assert!(
            gain_bound > 1.05,
            "overlap must win when memory-bound (gain {gain_bound:.3})"
        );
        assert!(
            gain_bound > gain_free,
            "overlap gain must shrink in the compute-bound regime: {gain_bound:.3} vs {gain_free:.3}"
        );
    }
}
