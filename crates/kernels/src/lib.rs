//! # mempool-kernels
//!
//! Workload kernels for the MemPool simulator, plus the analytic
//! phase-accumulation model of the paper's Section VI-A.
//!
//! The centerpiece is the blocked **matrix multiplication**: a large
//! `M x M` product whose operands live in off-chip memory. Input tiles are
//! DMA-transferred into the SPM (*memory phase*), all cores compute on them
//! (*compute phase*), and the output tile is written back; bigger SPMs
//! allow bigger tiles, more data reuse, and longer compute phases. The
//! crate provides:
//!
//! * [`matmul::ComputePhase`] — generated RV32IM+Xpulpimg code for one
//!   compute phase, run cycle-accurately on [`mempool_sim::Cluster`];
//! * [`matmul::BlockedMatmul`] — a full multi-phase orchestration (DMA +
//!   compute) for simulator-scale problems;
//! * [`matmul::PhaseModel`] — the paper's analytic cycle model for the
//!   full `M = 326400` problem, parameterized by constants *measured* on
//!   the simulator ([`measure`]);
//! * smaller kernels ([`axpy`], [`dotprod`], [`conv2d`], [`gemv`],
//!   [`transpose`]) exercising the same code paths, used by the examples,
//!   plus the memory-bound [`stencil`] phase model;
//! * central and two-level tree [`barrier`]s built from the A-extension
//!   atomics, and workload [`characterize`]-ation;
//! * degraded-mode [`resilience`] runs: the same compute phase clean and
//!   under an injected fault plan, with the slowdown attributed exactly.
//!
//! ## Example
//!
//! ```
//! use mempool_kernels::matmul::PhaseModel;
//! use mempool_arch::SpmCapacity;
//!
//! let model = PhaseModel::with_measured_defaults();
//! let base = model.total_cycles(SpmCapacity::MiB1, 4);
//! let big = model.total_cycles(SpmCapacity::MiB8, 4);
//! // Figure 6: at 4 B/cycle the 8 MiB configuration is far faster.
//! assert!(base as f64 / big as f64 > 1.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axpy;
pub mod barrier;
pub mod characterize;
pub mod conv2d;
pub mod dotprod;
pub mod gemv;
pub mod matmul;
pub mod measure;
pub mod resilience;
pub mod stencil;
pub mod transpose;
pub mod workload;

pub use workload::{Kernel, KernelError};
