//! Matrix-vector product (GEMV): `y = A x`.
//!
//! Unlike matmul, every element of `A` is used exactly once — there is no
//! `t`-fold reuse for the SPM to exploit — so a blocked GEMV streaming `A`
//! from off-chip is the canonical *memory-bound* kernel: the paper notes
//! that "benefits on memory bound kernels are obviously larger" when the
//! memory system improves. The resident compute phase here exercises the
//! same inner-loop machinery as matmul (post-increment loads feeding
//! `p.mac`), and [`BlockedGemv`] streams row blocks through the SPM.

use mempool_isa::Program;
use mempool_sim::Cluster;

use crate::workload::{Kernel, KernelError};

/// The resident GEMV compute phase: `y = A x` with an `n x n` matrix in
/// the SPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemv {
    n: u32,
}

impl Gemv {
    /// Creates an `n x n` GEMV.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "matrix dimension must be nonzero");
        Gemv { n }
    }

    /// Matrix dimension.
    pub fn n(&self) -> u32 {
        self.n
    }

    fn layout(&self, cluster: &Cluster) -> (u32, u32, u32) {
        let base = cluster.storage().map().interleaved_base();
        let matrix = self.n * self.n * 4;
        // A, x, y.
        (base, base + matrix, base + matrix + self.n * 4)
    }

    fn a_value(i: u32, j: u32) -> u32 {
        (i * 3 + j * 5 + 1) % 19
    }

    fn x_value(j: u32) -> u32 {
        (j % 13) + 1
    }

    /// Host-side reference for `y[i]`.
    pub fn expected(&self, i: u32) -> u32 {
        (0..self.n)
            .map(|j| Self::a_value(i, j).wrapping_mul(Self::x_value(j)))
            .fold(0u32, u32::wrapping_add)
    }
}

impl Kernel for Gemv {
    fn name(&self) -> &'static str {
        "gemv"
    }

    fn program(&self, cluster: &Cluster) -> Result<Program, KernelError> {
        let cores = cluster.config().num_cores();
        let n = self.n;
        if !n.is_multiple_of(cores) {
            return Err(KernelError::BadShape {
                detail: format!("n = {n} must be a multiple of {cores} cores"),
            });
        }
        let rows_per_core = n / cores;
        let (a, x, y) = self.layout(cluster);
        // Each core handles `rows_per_core` rows: walk the row of A and
        // the shared x with post-increments, accumulate with p.mac.
        let src = format!(
            r#"
                csrr t0, mhartid
                li   t1, {rows_per_core}
                mul  t2, t0, t1            # first row
                add  t3, t2, t1            # end row
                li   s3, {n4}
            row_loop:
                mul  s0, t2, s3
                li   s4, {a}
                add  s0, s0, s4            # A[row][0]
                li   s1, {x}               # x[0]
                li   a0, 0                 # acc
                li   t4, {n}
            col_loop:
                p.lw a1, 4(s0!)
                p.lw a2, 4(s1!)
                p.mac a0, a1, a2
                addi t4, t4, -1
                bnez t4, col_loop
                slli a3, t2, 2
                li   a4, {y}
                add  a3, a3, a4
                sw   a0, 0(a3)             # y[row]
                addi t2, t2, 1
                blt  t2, t3, row_loop
                wfi
            "#,
            n4 = n * 4,
        );
        Ok(Program::assemble(&src)?)
    }

    fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError> {
        let (a, x, y) = self.layout(cluster);
        let n = self.n;
        for i in 0..n {
            for j in 0..n {
                cluster.write_spm_word(a + (i * n + j) * 4, Self::a_value(i, j))?;
            }
        }
        for j in 0..n {
            cluster.write_spm_word(x + j * 4, Self::x_value(j))?;
            cluster.write_spm_word(y + j * 4, 0)?;
        }
        Ok(())
    }

    fn verify(&self, cluster: &Cluster) -> Result<(), KernelError> {
        let (_, _, y) = self.layout(cluster);
        for i in 0..self.n {
            let got = cluster.read_spm_word(y + i * 4)?;
            let expected = self.expected(i);
            if got != expected {
                return Err(KernelError::Mismatch {
                    detail: format!("y[{i}] = {got}, expected {expected}"),
                });
            }
        }
        Ok(())
    }
}

/// Blocked GEMV over an off-chip matrix: row blocks of `A` are streamed
/// into the SPM (no reuse), the resident phase computes, and the partial
/// `y` is written back — the memory-bound counterpart of
/// [`crate::matmul::BlockedMatmul`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedGemv {
    m: u32,
    block_rows: u32,
}

impl BlockedGemv {
    /// Creates a blocked GEMV of an `m x m` matrix processed
    /// `block_rows` rows at a time.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows` does not divide `m`.
    pub fn new(m: u32, block_rows: u32) -> Self {
        assert!(
            m.is_multiple_of(block_rows),
            "block rows must divide the matrix dimension"
        );
        BlockedGemv { m, block_rows }
    }

    /// Runs the blocked computation against external memory, returning
    /// `(memory_cycles, compute_cycles)`.
    ///
    /// # Errors
    ///
    /// Propagates codegen, simulation, and DMA errors.
    pub fn run(&self, cluster: &mut Cluster) -> Result<(u64, u64), KernelError> {
        let (m, rows) = (self.m, self.block_rows);
        // External layout: A row-major at 0, x after it, y after that.
        let ext_a = 0u64;
        let ext_x = m as u64 * m as u64 * 4;
        let ext_y = ext_x + m as u64 * 4;
        for i in 0..m {
            for j in 0..m {
                cluster.storage_mut().write_external_word(
                    ext_a + (i as u64 * m as u64 + j as u64) * 4,
                    Gemv::a_value(i, j),
                );
            }
            cluster
                .storage_mut()
                .write_external_word(ext_x + i as u64 * 4, Gemv::x_value(i));
        }

        // The resident phase treats each block as a `rows x m` slab; we
        // reuse the square-phase codegen by processing `rows`-row blocks
        // with an n = m inner dimension via a rows x m layout: generate a
        // dedicated program.
        let phase = Gemv::new(m); // full-width rows
        let (a_spm, x_spm, y_spm) = phase.layout(cluster);
        let program = BlockRows {
            rows,
            m,
            a: a_spm,
            x: x_spm,
            y: y_spm,
        }
        .program(cluster)?;
        cluster.load_program(program);
        cluster.preload_icaches();

        // x is resident for the whole run.
        let mut memory = cluster.dma_tile(ext_x, 4, x_spm, 1, m * 4, true)?;
        let mut compute = 0;
        for block in 0..m / rows {
            memory += cluster.dma_tile(
                ext_a + block as u64 * rows as u64 * m as u64 * 4,
                m as u64 * 4,
                a_spm,
                rows,
                m * 4,
                true,
            )?;
            let start = cluster.cycle();
            cluster.resume_all(0)?;
            cluster.run(u64::MAX / 2)?;
            compute += cluster.cycle() - start;
            memory += cluster.dma_tile(
                ext_y + block as u64 * rows as u64 * 4,
                4,
                y_spm,
                1,
                rows * 4,
                false,
            )?;
        }
        // Verify against the host reference.
        let full = Gemv::new(m);
        for i in 0..m {
            let got = cluster.storage().read_external_word(ext_y + i as u64 * 4);
            let expected = full.expected(i);
            if got != expected {
                return Err(KernelError::Mismatch {
                    detail: format!("y[{i}] = {got}, expected {expected}"),
                });
            }
        }
        Ok((memory, compute))
    }
}

/// Program generator for one `rows x m` block (rows distributed across
/// cores).
struct BlockRows {
    rows: u32,
    m: u32,
    a: u32,
    x: u32,
    y: u32,
}

impl BlockRows {
    fn program(&self, cluster: &Cluster) -> Result<Program, KernelError> {
        let cores = cluster.config().num_cores();
        if !self.rows.is_multiple_of(cores) {
            return Err(KernelError::BadShape {
                detail: format!(
                    "block rows {} must be a multiple of {cores} cores",
                    self.rows
                ),
            });
        }
        let rows_per_core = self.rows / cores;
        let src = format!(
            r#"
                csrr t0, mhartid
                li   t1, {rows_per_core}
                mul  t2, t0, t1
                add  t3, t2, t1
                li   s3, {m4}
            row_loop:
                mul  s0, t2, s3
                li   s4, {a}
                add  s0, s0, s4
                li   s1, {x}
                li   a0, 0
                li   t4, {m}
            col_loop:
                p.lw a1, 4(s0!)
                p.lw a2, 4(s1!)
                p.mac a0, a1, a2
                addi t4, t4, -1
                bnez t4, col_loop
                slli a3, t2, 2
                li   a4, {y}
                add  a3, a3, a4
                sw   a0, 0(a3)
                addi t2, t2, 1
                blt  t2, t3, row_loop
                wfi
            "#,
            m4 = self.m * 4,
            a = self.a,
            x = self.x,
            y = self.y,
            m = self.m,
        );
        Ok(Program::assemble(&src)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::ClusterConfig;
    use mempool_sim::{Cluster, SimParams};

    fn cluster(bw: u32) -> Cluster {
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(512)
            .build()
            .unwrap();
        Cluster::new(cfg, SimParams::default().with_offchip_bandwidth(bw))
    }

    #[test]
    fn resident_gemv_is_correct() {
        let mut c = cluster(16);
        Gemv::new(48).run(&mut c, 10_000_000).expect("gemv failed");
    }

    #[test]
    fn blocked_gemv_is_correct_and_memory_bound() {
        // At the scaled-down 16-core instance the compute:traffic ratio is
        // 16x better than on the full 256-core cluster, so use the
        // worst-case bandwidth to land in the memory-bound regime the full
        // machine sees at 16 B/cycle.
        let mut c = cluster(4);
        let (memory, compute) = BlockedGemv::new(64, 16).run(&mut c).expect("blocked gemv");
        assert!(
            memory > compute,
            "gemv must be memory-bound at 4 B/cycle: mem {memory} vs compute {compute}"
        );
    }

    #[test]
    fn gemv_gains_more_from_bandwidth_than_matmul() {
        // The paper's memory-bound remark, simulated end to end: 4 -> 64
        // B/cycle must speed GEMV up far more than the (compute-bound)
        // matmul compute phases allow.
        use crate::matmul::BlockedMatmul;
        let gemv_total = |bw: u32| {
            let mut c = cluster(bw);
            let (m, cmp) = BlockedGemv::new(64, 16).run(&mut c).expect("gemv");
            (m + cmp) as f64
        };
        let matmul_total = |bw: u32| {
            let mut c = cluster(bw);
            let mm = BlockedMatmul::new(64, 32);
            mm.setup(&mut c).expect("setup");
            let cycles = mm.run(&mut c).expect("run");
            cycles.total() as f64
        };
        let gemv_gain = gemv_total(4) / gemv_total(64);
        let matmul_gain = matmul_total(4) / matmul_total(64);
        assert!(
            gemv_gain > 1.5 * matmul_gain,
            "gemv bandwidth gain {gemv_gain:.2} vs matmul {matmul_gain:.2}"
        );
    }

    #[test]
    fn rejects_indivisible_shapes() {
        let c = cluster(16);
        assert!(matches!(
            Gemv::new(50).program(&c),
            Err(KernelError::BadShape { .. })
        ));
    }
}
