//! Degraded-mode resilience runs.
//!
//! The paper's 3D stack trades yield for density: F2F-via opens and SRAM
//! bank defects are survivable through retries, SEC-DED, and spare-bank
//! remapping, at a measurable performance cost. This module quantifies
//! that cost on the cycle-accurate simulator: the same compute phase is
//! run *clean* and *under an injected fault plan*, and the slowdown is
//! attributed cycle-exactly to the new `fault_retry` and `ecc` stall
//! buckets.
//!
//! The degraded run must still produce bit-exact results — faults degrade
//! performance, never correctness (uncorrectable errors and deadlocks are
//! typed simulator errors, not wrong numbers).

use mempool_arch::ClusterConfig;
use mempool_fault::{FaultConfig, FaultPlan, FaultReport};
use mempool_obs::{AttributionReport, Json, Obs};
use mempool_sim::{Cluster, SimParams};

use crate::matmul::ComputePhase;
use crate::workload::{Kernel, KernelError};

/// Cycle budget for one resilience phase (generous: the phase itself runs
/// in tens of thousands of cycles).
const BUDGET: u64 = 100_000_000;

/// Result of a clean-vs-degraded pair of compute-phase runs.
#[derive(Debug, Clone)]
pub struct DegradedRun {
    /// Seed of the injected plan.
    pub seed: u64,
    /// Fault rate the plan was generated with.
    pub rate: f64,
    /// Cycles of the fault-free reference run.
    pub clean_cycles: u64,
    /// Cycles of the run with the plan injected.
    pub degraded_cycles: u64,
    /// Number of injected fault events.
    pub events: usize,
    /// The degraded run's fault report (retries, corrections, remaps).
    pub report: FaultReport,
    /// The degraded run's exact cycle attribution (carries the nonzero
    /// `fault_retry` / `ecc` buckets).
    pub attribution: AttributionReport,
}

impl DegradedRun {
    /// Relative slowdown of the degraded run (`0.0` = no overhead).
    pub fn overhead(&self) -> f64 {
        if self.clean_cycles == 0 {
            0.0
        } else {
            self.degraded_cycles as f64 / self.clean_cycles as f64 - 1.0
        }
    }

    /// Cycle delta between the degraded and clean runs.
    pub fn delta_cycles(&self) -> i64 {
        self.degraded_cycles as i64 - self.clean_cycles as i64
    }

    /// Serializes the comparison (summary, fault report, attribution).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Int(self.seed as i64)),
            ("rate", Json::Float(self.rate)),
            ("clean_cycles", Json::Int(self.clean_cycles as i64)),
            ("degraded_cycles", Json::Int(self.degraded_cycles as i64)),
            ("delta_cycles", Json::Int(self.delta_cycles())),
            ("overhead", Json::Float(self.overhead())),
            ("injected_events", Json::Int(self.events as i64)),
            ("fault_report", self.report.to_json()),
            ("attribution", self.attribution.to_json()),
        ])
    }
}

/// The 16-core measurement shape used throughout the experiment pipeline.
fn resilience_cluster() -> Result<Cluster, KernelError> {
    let cfg = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(512)
        .build()
        .map_err(|e| KernelError::BadShape {
            detail: e.to_string(),
        })?;
    Ok(Cluster::new(cfg, SimParams::default()))
}

/// Observability hooks for the degraded run: an [`Obs`] bundle the
/// degraded cluster attaches to, plus optional time-series sampling and
/// flight recording. The flight recorder implies instruction tracing so a
/// crash dump carries each core's recent-instruction window.
#[derive(Debug, Clone, Default)]
pub struct DegradedObs {
    /// Shared observability bundle (clones share state).
    pub obs: Obs,
    /// Epoch length in cycles for time-series sampling, when wanted.
    pub timeseries_window: Option<u64>,
    /// Flight-recorder ring capacity, when wanted.
    pub flight_capacity: Option<usize>,
}

/// A failed degraded run: the error, plus — when the simulator itself
/// faulted — a self-contained crash dump ready to write as
/// `crashdump.json`.
#[derive(Debug)]
pub struct DegradedFailure {
    /// What went wrong.
    pub error: KernelError,
    /// [`Cluster::crash_dump`] output for simulator faults (`None` for
    /// shape/assembly/verification failures, which have no cluster state
    /// worth dumping).
    pub crash_dump: Option<Json>,
}

impl std::fmt::Display for DegradedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

/// Runs one compute phase clean, then again under the deterministic fault
/// plan generated from `(seed, rate)`, and returns the comparison. The
/// timed-fault horizon is set to the clean run's length so transient flips
/// actually land inside the degraded run; `watchdog`, when given, arms the
/// forward-progress watchdog for the degraded run.
///
/// # Errors
///
/// Propagates simulation errors (including typed deadlock or
/// uncorrectable-ECC faults) and result-verification mismatches.
pub fn degraded_compute_run(
    seed: u64,
    rate: f64,
    watchdog: Option<u64>,
) -> Result<DegradedRun, KernelError> {
    degraded_compute_run_observed(seed, rate, watchdog, None).map_err(|failure| failure.error)
}

/// [`degraded_compute_run`] with observability: when `hooks` is given, the
/// degraded cluster records spans/metrics into the shared [`Obs`] and
/// optionally samples time series and keeps a flight-recorder ring. On a
/// simulator fault the returned [`DegradedFailure`] carries a full crash
/// dump (flight events, per-core liveness, metrics, and counter-track
/// trace) regardless of whether hooks were attached — without hooks the
/// dump simply degrades to its obs-free sections.
///
/// # Errors
///
/// Same failures as [`degraded_compute_run`], wrapped with the dump.
pub fn degraded_compute_run_observed(
    seed: u64,
    rate: f64,
    watchdog: Option<u64>,
    hooks: Option<&DegradedObs>,
) -> Result<DegradedRun, Box<DegradedFailure>> {
    let plain = |error: KernelError| {
        Box::new(DegradedFailure {
            error,
            crash_dump: None,
        })
    };
    let phase = ComputePhase::new(32);

    let mut clean = resilience_cluster().map_err(plain)?;
    let clean_cycles = phase.run(&mut clean, BUDGET).map_err(plain)?;
    drop(clean);

    let mut degraded = resilience_cluster().map_err(plain)?;
    if let Some(hooks) = hooks {
        degraded.attach_obs(&hooks.obs, "degraded");
        if let Some(window) = hooks.timeseries_window {
            degraded.enable_timeseries(window);
        }
        if let Some(capacity) = hooks.flight_capacity {
            degraded.enable_flight(capacity);
            degraded.enable_trace(capacity);
        }
    }
    let fault_cfg = FaultConfig::new(seed, rate).with_horizon(clean_cycles.max(1));
    let plan = FaultPlan::generate(&fault_cfg, degraded.config());
    degraded.inject_faults(&plan).map_err(|e| plain(e.into()))?;
    if let Some(threshold) = watchdog {
        degraded.set_watchdog(threshold);
    }
    let degraded_cycles = match phase.run(&mut degraded, BUDGET) {
        Ok(cycles) => cycles,
        Err(error) => {
            let crash_dump = match &error {
                KernelError::Sim(sim) => Some(degraded.crash_dump(sim)),
                _ => None,
            };
            return Err(Box::new(DegradedFailure { error, crash_dump }));
        }
    };

    let stats = degraded.stats();
    let attribution = stats.attribution(
        degraded.config().cores_per_tile(),
        degraded.config().banks_per_tile(),
    );
    let report = degraded
        .fault_report()
        .expect("a plan was injected, so a report exists");
    // Close any still-open spans so the caller's trace export is balanced.
    degraded.detach_obs();
    Ok(DegradedRun {
        seed,
        rate,
        clean_cycles,
        degraded_cycles,
        events: plan.len(),
        report,
        attribution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_run_is_slower_but_correct_and_exactly_attributed() {
        let run = degraded_compute_run(42, 1e-6, Some(2_000_000)).unwrap();
        assert!(run.events >= 2, "generation floors guarantee faults");
        assert!(
            run.degraded_cycles > run.clean_cycles,
            "retries must cost cycles ({} vs {})",
            run.degraded_cycles,
            run.clean_cycles
        );
        assert!(run.overhead() > 0.0);
        assert!(run.report.retried_accesses > 0);
        // Exact accounting survives fault injection: every core's buckets
        // sum to the total, and the new buckets carry the delta.
        for core in &run.attribution.cores {
            assert_eq!(core.total(), run.attribution.cycles);
        }
        assert!(run.attribution.cluster.fault_retry > 0);
    }

    #[test]
    fn observed_run_fills_the_shared_series_and_flight_ring() {
        let hooks = DegradedObs {
            obs: Obs::new(),
            timeseries_window: Some(256),
            flight_capacity: Some(128),
        };
        let run = degraded_compute_run_observed(42, 1e-6, Some(2_000_000), Some(&hooks)).unwrap();
        assert!(run.degraded_cycles > run.clean_cycles);
        assert!(
            !hooks.obs.series.is_empty(),
            "epoch sampling must produce tracks"
        );
        assert!(
            !hooks.obs.flight.is_empty(),
            "served requests must land in the flight ring"
        );
    }

    #[test]
    fn a_hair_trigger_watchdog_fails_with_a_crash_dump() {
        // Threshold 1 deadlocks the degraded run on its first stall
        // cycle; the failure must carry a parseable dump.
        let hooks = DegradedObs {
            obs: Obs::new(),
            timeseries_window: Some(64),
            flight_capacity: Some(64),
        };
        let failure = degraded_compute_run_observed(42, 1e-6, Some(1), Some(&hooks)).unwrap_err();
        assert!(matches!(failure.error, KernelError::Sim(_)));
        let dump = failure.crash_dump.expect("sim faults carry a dump");
        let doc = Json::parse(&dump.to_pretty()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mempool-crashdump/v1")
        );
        assert!(!doc
            .get("liveness")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
        // Even though no 64-cycle epoch boundary was reached, the dump
        // flushes the partial epoch so counter tracks are present.
        let series = doc
            .get("timeseries")
            .and_then(|t| t.get("series"))
            .and_then(Json::as_arr)
            .unwrap();
        assert!(!series.is_empty(), "partial epoch must be flushed");
    }

    #[test]
    fn json_summary_carries_the_comparison() {
        let run = degraded_compute_run(7, 1e-6, None).unwrap();
        let json = run.to_json();
        assert_eq!(json.get("seed").unwrap().as_int(), Some(7));
        assert!(json.get("fault_report").is_some());
        assert!(json.get("attribution").is_some());
        let text = json.to_string();
        assert!(text.contains("degraded_cycles"));
    }
}
