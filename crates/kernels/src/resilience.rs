//! Degraded-mode resilience runs.
//!
//! The paper's 3D stack trades yield for density: F2F-via opens and SRAM
//! bank defects are survivable through retries, SEC-DED, and spare-bank
//! remapping, at a measurable performance cost. This module quantifies
//! that cost on the cycle-accurate simulator: the same compute phase is
//! run *clean* and *under an injected fault plan*, and the slowdown is
//! attributed cycle-exactly to the new `fault_retry` and `ecc` stall
//! buckets.
//!
//! The degraded run must still produce bit-exact results — faults degrade
//! performance, never correctness (uncorrectable errors and deadlocks are
//! typed simulator errors, not wrong numbers).

use std::path::{Path, PathBuf};

use mempool_arch::ClusterConfig;
use mempool_fault::{FaultConfig, FaultPlan, FaultReport};
use mempool_obs::{AttributionReport, Json, Obs};
use mempool_sim::{run_with_checkpoints, CheckpointError, Checkpointer, Cluster, SimParams};

use crate::matmul::ComputePhase;
use crate::workload::{Kernel, KernelError};

/// Cycle budget for one resilience phase (generous: the phase itself runs
/// in tens of thousands of cycles).
const BUDGET: u64 = 100_000_000;

/// Checkpoint files retained per degraded run (newest first; older
/// snapshots are deleted as new ones land).
const CHECKPOINT_KEEP: usize = 3;

/// Default snapshot interval (cycles) when a checkpoint directory is set
/// but no explicit interval is.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 10_000;

/// Result of a clean-vs-degraded pair of compute-phase runs.
#[derive(Debug, Clone)]
pub struct DegradedRun {
    /// Seed of the injected plan.
    pub seed: u64,
    /// Fault rate the plan was generated with.
    pub rate: f64,
    /// Cycles of the fault-free reference run.
    pub clean_cycles: u64,
    /// Cycles of the run with the plan injected.
    pub degraded_cycles: u64,
    /// Number of injected fault events.
    pub events: usize,
    /// The degraded run's fault report (retries, corrections, remaps).
    pub report: FaultReport,
    /// The degraded run's exact cycle attribution (carries the nonzero
    /// `fault_retry` / `ecc` buckets).
    pub attribution: AttributionReport,
}

impl DegradedRun {
    /// Relative slowdown of the degraded run (`0.0` = no overhead).
    pub fn overhead(&self) -> f64 {
        if self.clean_cycles == 0 {
            0.0
        } else {
            self.degraded_cycles as f64 / self.clean_cycles as f64 - 1.0
        }
    }

    /// Cycle delta between the degraded and clean runs.
    pub fn delta_cycles(&self) -> i64 {
        self.degraded_cycles as i64 - self.clean_cycles as i64
    }

    /// Serializes the comparison (summary, fault report, attribution).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Int(self.seed as i64)),
            ("rate", Json::Float(self.rate)),
            ("clean_cycles", Json::Int(self.clean_cycles as i64)),
            ("degraded_cycles", Json::Int(self.degraded_cycles as i64)),
            ("delta_cycles", Json::Int(self.delta_cycles())),
            ("overhead", Json::Float(self.overhead())),
            ("injected_events", Json::Int(self.events as i64)),
            ("fault_report", self.report.to_json()),
            ("attribution", self.attribution.to_json()),
        ])
    }
}

/// The 16-core measurement shape used throughout the experiment pipeline.
fn resilience_cluster() -> Result<Cluster, KernelError> {
    let cfg = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(512)
        .build()
        .map_err(|e| KernelError::BadShape {
            detail: e.to_string(),
        })?;
    Ok(Cluster::new(cfg, SimParams::default()))
}

/// Observability hooks for the degraded run: an [`Obs`] bundle the
/// degraded cluster attaches to, plus optional time-series sampling and
/// flight recording. The flight recorder implies instruction tracing so a
/// crash dump carries each core's recent-instruction window.
#[derive(Debug, Clone, Default)]
pub struct DegradedObs {
    /// Shared observability bundle (clones share state).
    pub obs: Obs,
    /// Epoch length in cycles for time-series sampling, when wanted.
    pub timeseries_window: Option<u64>,
    /// Flight-recorder ring capacity, when wanted.
    pub flight_capacity: Option<usize>,
    /// Directory for periodic degraded-run checkpoints, when wanted.
    /// Snapshots are atomic (`ckpt-<cycle>.json`, temp + rename) with
    /// bounded retention; a crashed run's last good snapshot is reported
    /// through [`DegradedFailure::last_checkpoint`].
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot interval in cycles ([`DEFAULT_CHECKPOINT_EVERY`] when
    /// unset). Ignored without `checkpoint_dir`.
    pub checkpoint_every: Option<u64>,
    /// Resume the degraded run from this checkpoint file instead of
    /// starting it at cycle zero. The snapshot carries the program, fault
    /// controller, and watchdog, so the resumed run is bit-identical to
    /// an unbroken one.
    pub resume: Option<PathBuf>,
}

/// An instrumented *clean* run: the compute phase with the full
/// observability stack attached but no fault plan, so at `--threads > 1`
/// it dispatches to the quantum engine (instrumentation no longer forces
/// the sequential step path). This is the run behind `repro
/// --timeseries/--flight` without `--faults`.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Cycles the instrumented phase took.
    pub cycles: u64,
    /// Which engine the run dispatched to, and why.
    pub engine: mempool_sim::EngineSelection,
    /// Exact cycle attribution of the instrumented run.
    pub attribution: AttributionReport,
}

impl ObservedRun {
    /// Serializes the run summary (cycle count, engine record,
    /// attribution).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::Int(self.cycles as i64)),
            ("engine", self.engine.to_json()),
            ("attribution", self.attribution.to_json()),
        ])
    }

    /// One-line text form for the repro CLI.
    pub fn to_text(&self) -> String {
        format!(
            "observed clean run: {} cycles on the {} engine ({})",
            self.cycles, self.engine.engine, self.engine.reason
        )
    }
}

/// Runs one *clean* compute phase with observability attached: spans and
/// metrics into the shared [`Obs`], plus optional time-series sampling
/// and a flight-recorder ring (which implies instruction tracing, as in
/// the degraded path). Without a fault plan the run is quantum-eligible,
/// so with multiple default threads the shard-local observation lanes
/// carry the instrumentation at full parallel speed — and the artifacts
/// are bit-identical to a sequential run.
///
/// # Errors
///
/// Propagates simulation and verification errors; simulator faults carry
/// a full crash dump, as in [`degraded_compute_run_observed`].
pub fn observed_compute_run(hooks: &DegradedObs) -> Result<ObservedRun, Box<DegradedFailure>> {
    let plain = |error: KernelError| {
        Box::new(DegradedFailure {
            error,
            crash_dump: None,
            last_checkpoint: None,
        })
    };
    let phase = ComputePhase::new(32);
    let mut cluster = resilience_cluster().map_err(plain)?;
    cluster.attach_obs(&hooks.obs, "observed");
    if let Some(window) = hooks.timeseries_window {
        cluster.enable_timeseries(window);
    }
    if let Some(capacity) = hooks.flight_capacity {
        cluster.enable_flight(capacity);
        cluster.enable_trace(capacity);
    }
    let engine = cluster.engine_selection();
    let cycles = match phase.run(&mut cluster, BUDGET) {
        Ok(cycles) => cycles,
        Err(error) => {
            let crash_dump = match &error {
                KernelError::Sim(sim) => Some(cluster.crash_dump(sim)),
                _ => None,
            };
            return Err(Box::new(DegradedFailure {
                error,
                crash_dump,
                last_checkpoint: None,
            }));
        }
    };
    let stats = cluster.stats();
    let attribution = stats.attribution(
        cluster.config().cores_per_tile(),
        cluster.config().banks_per_tile(),
    );
    cluster.detach_obs();
    Ok(ObservedRun {
        cycles,
        engine,
        attribution,
    })
}

/// A failed degraded run: the error, plus — when the simulator itself
/// faulted — a self-contained crash dump ready to write as
/// `crashdump.json`.
#[derive(Debug)]
pub struct DegradedFailure {
    /// What went wrong.
    pub error: KernelError,
    /// [`Cluster::crash_dump`] output for simulator faults (`None` for
    /// shape/assembly/verification failures, which have no cluster state
    /// worth dumping).
    pub crash_dump: Option<Json>,
    /// The newest checkpoint that survived the crash, when checkpointing
    /// was on — resume from it via [`DegradedObs::resume`].
    pub last_checkpoint: Option<PathBuf>,
}

impl std::fmt::Display for DegradedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

/// Runs one compute phase clean, then again under the deterministic fault
/// plan generated from `(seed, rate)`, and returns the comparison. The
/// timed-fault horizon is set to the clean run's length so transient flips
/// actually land inside the degraded run; `watchdog`, when given, arms the
/// forward-progress watchdog for the degraded run.
///
/// # Errors
///
/// Propagates simulation errors (including typed deadlock or
/// uncorrectable-ECC faults) and result-verification mismatches.
pub fn degraded_compute_run(
    seed: u64,
    rate: f64,
    watchdog: Option<u64>,
) -> Result<DegradedRun, KernelError> {
    degraded_compute_run_observed(seed, rate, watchdog, None).map_err(|failure| failure.error)
}

/// [`degraded_compute_run`] with observability: when `hooks` is given, the
/// degraded cluster records spans/metrics into the shared [`Obs`] and
/// optionally samples time series and keeps a flight-recorder ring. On a
/// simulator fault the returned [`DegradedFailure`] carries a full crash
/// dump (flight events, per-core liveness, metrics, and counter-track
/// trace) regardless of whether hooks were attached — without hooks the
/// dump simply degrades to its obs-free sections.
///
/// # Errors
///
/// Same failures as [`degraded_compute_run`], wrapped with the dump.
pub fn degraded_compute_run_observed(
    seed: u64,
    rate: f64,
    watchdog: Option<u64>,
    hooks: Option<&DegradedObs>,
) -> Result<DegradedRun, Box<DegradedFailure>> {
    let plain = |error: KernelError| {
        Box::new(DegradedFailure {
            error,
            crash_dump: None,
            last_checkpoint: None,
        })
    };
    let phase = ComputePhase::new(32);

    let mut clean = resilience_cluster().map_err(plain)?;
    let clean_cycles = phase.run(&mut clean, BUDGET).map_err(plain)?;
    drop(clean);

    // Resume restores everything — program, PCs, fault controller,
    // watchdog — from the snapshot; a fresh start builds the cluster and
    // injects the plan itself.
    let resume = hooks.and_then(|h| h.resume.as_deref());
    let mut degraded = match resume {
        Some(path) => Cluster::restore_from_file(path).map_err(|e| {
            plain(KernelError::Checkpoint {
                detail: format!("resume from {}: {e}", path.display()),
            })
        })?,
        None => resilience_cluster().map_err(plain)?,
    };
    if let Some(hooks) = hooks {
        degraded.attach_obs(&hooks.obs, "degraded");
        if let Some(window) = hooks.timeseries_window {
            if resume.is_some() {
                // Keep the restored epoch cursors; enable_timeseries
                // would rebaseline them and break mid-epoch resumes.
                degraded.resume_timeseries(window);
            } else {
                degraded.enable_timeseries(window);
            }
        }
        if let Some(capacity) = hooks.flight_capacity {
            degraded.enable_flight(capacity);
            degraded.enable_trace(capacity);
        }
    }
    // The plan is regenerated on resume too: injection state lives in
    // the checkpoint, but the event count reported below does not.
    let fault_cfg = FaultConfig::new(seed, rate).with_horizon(clean_cycles.max(1));
    let plan = FaultPlan::generate(&fault_cfg, degraded.config());
    if resume.is_none() {
        degraded.inject_faults(&plan).map_err(|e| plain(e.into()))?;
        if let Some(threshold) = watchdog {
            degraded.set_watchdog(threshold);
        }
        // The fresh-start prologue of `Kernel::run`; a resumed cluster
        // must never repeat it (load_program resets every PC).
        let program = phase.program(&degraded).map_err(plain)?;
        phase.setup(&mut degraded).map_err(plain)?;
        degraded.load_program(program);
        degraded.preload_icaches();
    }

    let mut checkpointer = match hooks.and_then(|h| h.checkpoint_dir.as_ref()) {
        Some(dir) => {
            let every = hooks
                .and_then(|h| h.checkpoint_every)
                .unwrap_or(DEFAULT_CHECKPOINT_EVERY);
            Some(Checkpointer::new(dir, every, CHECKPOINT_KEEP).map_err(|e| {
                plain(KernelError::Checkpoint {
                    detail: e.to_string(),
                })
            })?)
        }
        None => None,
    };
    // The phase deadline is absolute (the kernel starts at cycle zero),
    // so a resumed run only gets the budget's remainder.
    let remaining = BUDGET.saturating_sub(degraded.cycle());
    let run_result = match &mut checkpointer {
        Some(ckpt) => run_with_checkpoints(&mut degraded, remaining, ckpt).map_err(|e| match e {
            CheckpointError::Sim(sim) => KernelError::Sim(sim),
            other => KernelError::Checkpoint {
                detail: other.to_string(),
            },
        }),
        None => degraded.run(remaining).map_err(KernelError::Sim),
    };
    let degraded_cycles = match run_result {
        Ok(end) => end,
        Err(error) => {
            let crash_dump = match &error {
                KernelError::Sim(sim) => Some(degraded.crash_dump(sim)),
                _ => None,
            };
            let last_checkpoint = checkpointer
                .as_ref()
                .and_then(|c| c.last_good().map(Path::to_path_buf));
            return Err(Box::new(DegradedFailure {
                error,
                crash_dump,
                last_checkpoint,
            }));
        }
    };
    phase.verify(&degraded).map_err(plain)?;

    let stats = degraded.stats();
    let attribution = stats.attribution(
        degraded.config().cores_per_tile(),
        degraded.config().banks_per_tile(),
    );
    let report = degraded
        .fault_report()
        .expect("a plan was injected, so a report exists");
    // Close any still-open spans so the caller's trace export is balanced.
    degraded.detach_obs();
    Ok(DegradedRun {
        seed,
        rate,
        clean_cycles,
        degraded_cycles,
        events: plan.len(),
        report,
        attribution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_run_is_slower_but_correct_and_exactly_attributed() {
        let run = degraded_compute_run(42, 1e-6, Some(2_000_000)).unwrap();
        assert!(run.events >= 2, "generation floors guarantee faults");
        assert!(
            run.degraded_cycles > run.clean_cycles,
            "retries must cost cycles ({} vs {})",
            run.degraded_cycles,
            run.clean_cycles
        );
        assert!(run.overhead() > 0.0);
        assert!(run.report.retried_accesses > 0);
        // Exact accounting survives fault injection: every core's buckets
        // sum to the total, and the new buckets carry the delta.
        for core in &run.attribution.cores {
            assert_eq!(core.total(), run.attribution.cycles);
        }
        assert!(run.attribution.cluster.fault_retry > 0);
    }

    #[test]
    fn observed_run_fills_the_shared_series_and_flight_ring() {
        let hooks = DegradedObs {
            obs: Obs::new(),
            timeseries_window: Some(256),
            flight_capacity: Some(128),
            ..DegradedObs::default()
        };
        let run = degraded_compute_run_observed(42, 1e-6, Some(2_000_000), Some(&hooks)).unwrap();
        assert!(run.degraded_cycles > run.clean_cycles);
        assert!(
            !hooks.obs.series.is_empty(),
            "epoch sampling must produce tracks"
        );
        assert!(
            !hooks.obs.flight.is_empty(),
            "served requests must land in the flight ring"
        );
    }

    #[test]
    fn observed_clean_run_records_engine_and_fills_instrumentation() {
        let hooks = DegradedObs {
            obs: Obs::new(),
            timeseries_window: Some(256),
            flight_capacity: Some(128),
            ..DegradedObs::default()
        };
        let run = observed_compute_run(&hooks).unwrap();
        assert!(run.cycles > 0);
        // Unit tests run at the sequential default, so the recorded
        // choice is the step engine with the single-worker reason.
        assert_eq!(run.engine.engine, "step");
        assert!(run.engine.reason.contains("single effective worker"));
        assert!(!hooks.obs.series.is_empty(), "sampling must produce tracks");
        assert!(!hooks.obs.flight.is_empty(), "mem events must land");
        // Attribution stays exact under instrumentation.
        for core in &run.attribution.cores {
            assert_eq!(core.total(), run.attribution.cycles);
        }
        let json = run.to_json();
        assert_eq!(
            json.get("engine").and_then(|e| e.get("name")),
            Some(&Json::str("step"))
        );
    }

    #[test]
    fn a_hair_trigger_watchdog_fails_with_a_crash_dump() {
        // Threshold 1 deadlocks the degraded run on its first stall
        // cycle; the failure must carry a parseable dump.
        let hooks = DegradedObs {
            obs: Obs::new(),
            timeseries_window: Some(64),
            flight_capacity: Some(64),
            ..DegradedObs::default()
        };
        let failure = degraded_compute_run_observed(42, 1e-6, Some(1), Some(&hooks)).unwrap_err();
        assert!(matches!(failure.error, KernelError::Sim(_)));
        let dump = failure.crash_dump.expect("sim faults carry a dump");
        let doc = Json::parse(&dump.to_pretty()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mempool-crashdump/v1")
        );
        assert!(!doc
            .get("liveness")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
        // Even though no 64-cycle epoch boundary was reached, the dump
        // flushes the partial epoch so counter tracks are present.
        let series = doc
            .get("timeseries")
            .and_then(|t| t.get("series"))
            .and_then(Json::as_arr)
            .unwrap();
        assert!(!series.is_empty(), "partial epoch must be flushed");
    }

    #[test]
    fn a_checkpointed_degraded_run_resumes_bit_exactly() {
        let dir =
            std::env::temp_dir().join(format!("mempool-resilience-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Reference: the unbroken degraded run.
        let unbroken = degraded_compute_run(42, 1e-6, Some(2_000_000)).unwrap();

        // The same run with periodic checkpoints. The artifacts must be
        // unchanged by the slicing, and snapshots must exist afterwards.
        let hooks = DegradedObs {
            obs: Obs::new(),
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(5_000),
            ..DegradedObs::default()
        };
        let ckpted =
            degraded_compute_run_observed(42, 1e-6, Some(2_000_000), Some(&hooks)).unwrap();
        assert_eq!(ckpted.degraded_cycles, unbroken.degraded_cycles);
        assert_eq!(ckpted.report, unbroken.report);
        let mut snapshots: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        snapshots.sort();
        assert!(
            (1..=CHECKPOINT_KEEP).contains(&snapshots.len()),
            "retention bounds snapshots: {snapshots:?}"
        );

        // Resume from a genuinely mid-run snapshot (the oldest retained
        // one) and finish: bit-exact against the unbroken run.
        let resume_hooks = DegradedObs {
            obs: Obs::new(),
            resume: Some(snapshots[0].clone()),
            ..DegradedObs::default()
        };
        let resumed =
            degraded_compute_run_observed(42, 1e-6, Some(2_000_000), Some(&resume_hooks)).unwrap();
        assert_eq!(resumed.degraded_cycles, unbroken.degraded_cycles);
        assert_eq!(resumed.report, unbroken.report);
        assert_eq!(
            resumed.attribution.to_json().to_pretty(),
            unbroken.attribution.to_json().to_pretty(),
            "resume must not disturb cycle attribution"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_crashed_checkpointed_run_reports_its_last_good_snapshot() {
        let dir =
            std::env::temp_dir().join(format!("mempool-resilience-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let hooks = DegradedObs {
            obs: Obs::new(),
            flight_capacity: Some(64),
            checkpoint_dir: Some(dir.clone()),
            // The hair-trigger watchdog below deadlocks within the first
            // few cycles; per-cycle slicing guarantees a snapshot lands
            // before it trips.
            checkpoint_every: Some(1),
            ..DegradedObs::default()
        };
        // A hair-trigger watchdog kills the run after the snapshots start.
        let failure = degraded_compute_run_observed(42, 1e-6, Some(1), Some(&hooks)).unwrap_err();
        assert!(matches!(failure.error, KernelError::Sim(_)));
        assert!(failure.crash_dump.is_some());
        let last = failure.last_checkpoint.expect("snapshots were written");
        assert!(last.exists(), "{}", last.display());
        // The reported snapshot restores cleanly.
        let restored = Cluster::restore_from_file(&last).unwrap();
        assert!(restored.cycle() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_summary_carries_the_comparison() {
        let run = degraded_compute_run(7, 1e-6, None).unwrap();
        let json = run.to_json();
        assert_eq!(json.get("seed").unwrap().as_int(), Some(7));
        assert!(json.get("fault_report").is_some());
        assert!(json.get("attribution").is_some());
        let text = json.to_string();
        assert!(text.contains("degraded_cycles"));
    }
}
