//! The kernel abstraction shared by all workloads.

use std::fmt;

use mempool_isa::{AssembleError, Program};
use mempool_sim::{Cluster, SimError};

/// Error raised while building, running, or verifying a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The generated assembly failed to assemble (a codegen bug).
    Assemble(AssembleError),
    /// The simulator faulted.
    Sim(SimError),
    /// The kernel's output did not match the reference.
    Mismatch {
        /// Human-readable description of the first mismatch.
        detail: String,
    },
    /// The cluster configuration cannot run this kernel (e.g. a problem
    /// size not divisible by the core count).
    BadShape {
        /// What was wrong.
        detail: String,
    },
    /// Checkpointing or resuming the run failed (unwritable checkpoint
    /// directory, corrupt or mismatched snapshot).
    Checkpoint {
        /// What went wrong with the snapshot machinery.
        detail: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Assemble(e) => write!(f, "kernel codegen produced bad assembly: {e}"),
            KernelError::Sim(e) => write!(f, "simulation failed: {e}"),
            KernelError::Mismatch { detail } => write!(f, "output mismatch: {detail}"),
            KernelError::BadShape { detail } => write!(f, "invalid kernel shape: {detail}"),
            KernelError::Checkpoint { detail } => write!(f, "checkpointing failed: {detail}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Assemble(e) => Some(e),
            KernelError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AssembleError> for KernelError {
    fn from(e: AssembleError) -> Self {
        KernelError::Assemble(e)
    }
}

impl From<SimError> for KernelError {
    fn from(e: SimError) -> Self {
        KernelError::Sim(e)
    }
}

/// A workload that can be run on a [`Cluster`] and verified against a
/// host-side reference.
pub trait Kernel {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Generates the per-core program for the given cluster.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel cannot be built for this cluster
    /// shape.
    fn program(&self, cluster: &Cluster) -> Result<Program, KernelError>;

    /// Writes the kernel's inputs into the cluster's memory.
    ///
    /// # Errors
    ///
    /// Returns an error if input placement fails.
    fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError>;

    /// Checks the kernel's outputs against the host-side reference.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Mismatch`] describing the first wrong value.
    fn verify(&self, cluster: &Cluster) -> Result<(), KernelError>;

    /// Convenience driver: setup, load, preload I$, run, verify. Returns
    /// the cycle count.
    ///
    /// # Errors
    ///
    /// Propagates any build, simulation, or verification error.
    fn run(&self, cluster: &mut Cluster, max_cycles: u64) -> Result<u64, KernelError> {
        let program = self.program(cluster)?;
        self.setup(cluster)?;
        cluster.load_program(program);
        cluster.preload_icaches();
        let start = cluster.cycle();
        let end = cluster.run(max_cycles)?;
        self.verify(cluster)?;
        Ok(end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = KernelError::Mismatch {
            detail: "C[0][0] = 3, expected 4".into(),
        };
        assert!(e.to_string().contains("C[0][0]"));
        let e = KernelError::BadShape {
            detail: "n must divide cores".into(),
        };
        assert!(e.to_string().contains("invalid kernel shape"));
    }

    #[test]
    fn sim_errors_convert() {
        let e: KernelError = SimError::Timeout { cycles: 5 }.into();
        assert!(matches!(e, KernelError::Sim(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
