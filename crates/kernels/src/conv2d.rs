//! 2D convolution with a 3x3 kernel — the paper's motivating domain is
//! image processing (the `Xpulpimg` extension exists for exactly these
//! kernels).
//!
//! Each core computes a band of output rows; the 3x3 stencil makes
//! neighboring bands share input rows, generating the cross-tile traffic
//! patterns matmul does not.

use mempool_isa::Program;
use mempool_sim::Cluster;

use crate::workload::{Kernel, KernelError};

/// The 3x3 convolution kernel (valid padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2d {
    width: u32,
    height: u32,
    weights: [u32; 9],
    /// Optional ReLU ceiling applied with `p.clip` after each output.
    relu_max: Option<u32>,
}

impl Conv2d {
    /// Creates a convolution over a `width x height` image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 3.
    pub fn new(width: u32, height: u32, weights: [u32; 9]) -> Self {
        assert!(width >= 3 && height >= 3, "image must be at least 3x3");
        Conv2d {
            width,
            height,
            weights,
            relu_max: None,
        }
    }

    /// Adds a clipped-ReLU activation (`out = clamp(out, 0, max)`),
    /// executed with the `Xpulpimg` `p.clip` instruction.
    pub fn with_relu(mut self, max: u32) -> Self {
        self.relu_max = Some(max);
        self
    }

    /// Output dimensions (valid padding shrinks by 2).
    pub fn out_dims(&self) -> (u32, u32) {
        (self.width - 2, self.height - 2)
    }

    fn layout(&self, cluster: &Cluster) -> (u32, u32, u32) {
        let base = cluster.storage().map().interleaved_base();
        let image_bytes = self.width * self.height * 4;
        // image, weights (9 words), output.
        (base, base + image_bytes, base + image_bytes + 9 * 4)
    }

    fn pixel(&self, x: u32, y: u32) -> u32 {
        (x * 13 + y * 7) % 23
    }

    /// Host-side reference output at `(ox, oy)`.
    pub fn expected(&self, ox: u32, oy: u32) -> u32 {
        let mut acc = 0u32;
        for ky in 0..3 {
            for kx in 0..3 {
                acc = acc.wrapping_add(
                    self.weights[(ky * 3 + kx) as usize].wrapping_mul(self.pixel(ox + kx, oy + ky)),
                );
            }
        }
        match self.relu_max {
            Some(max) => (acc as i32).clamp(0, max as i32) as u32,
            None => acc,
        }
    }
}

impl Kernel for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn program(&self, cluster: &Cluster) -> Result<Program, KernelError> {
        let cores = cluster.config().num_cores();
        let (_, out_h) = self.out_dims();
        if out_h % cores != 0 {
            return Err(KernelError::BadShape {
                detail: format!("output height {out_h} must be a multiple of {cores} cores"),
            });
        }
        let rows_per_core = out_h / cores;
        let (img, wts, out) = self.layout(cluster);
        let (out_w, _) = self.out_dims();
        let w4 = self.width * 4;
        // The inner loop keeps the nine weights in registers (s2..s9, a2)
        // and walks three input-row pointers.
        let src = format!(
            r#"
                csrr t0, mhartid
                li   t1, {rows_per_core}
                mul  t2, t0, t1            # first output row
                add  t3, t2, t1            # end output row
                # load the nine weights
                li   a0, {wts}
                lw   s2, 0(a0)
                lw   s3, 4(a0)
                lw   s4, 8(a0)
                lw   s5, 12(a0)
                lw   s6, 16(a0)
                lw   s7, 20(a0)
                lw   s8, 24(a0)
                lw   s9, 28(a0)
                lw   a2, 32(a0)
                {relu_setup}
            row_loop:
                li   t4, 0                 # output column
            col_loop:
                # row pointers: image + (row + ky) * w4 + col * 4
                li   s0, {w4}
                mul  s1, t2, s0
                slli a3, t4, 2
                add  s1, s1, a3
                li   a4, {img}
                add  s1, s1, a4            # row 0 pointer
                add  s10, s1, s0           # row 1
                add  s11, s10, s0          # row 2
                li   a5, 0                 # acc
                lw   a6, 0(s1)
                p.mac a5, a6, s2
                lw   a6, 4(s1)
                p.mac a5, a6, s3
                lw   a6, 8(s1)
                p.mac a5, a6, s4
                lw   a6, 0(s10)
                p.mac a5, a6, s5
                lw   a6, 4(s10)
                p.mac a5, a6, s6
                lw   a6, 8(s10)
                p.mac a5, a6, s7
                lw   a6, 0(s11)
                p.mac a5, a6, s8
                lw   a6, 4(s11)
                p.mac a5, a6, s9
                lw   a6, 8(s11)
                p.mac a5, a6, a2
                {relu_apply}
                # store output[row][col]
                li   a7, {out_w}
                mul  a7, t2, a7
                add  a7, a7, t4
                slli a7, a7, 2
                li   a6, {out}
                add  a7, a7, a6
                sw   a5, 0(a7)
                addi t4, t4, 1
                li   a6, {out_w}
                blt  t4, a6, col_loop
                addi t2, t2, 1
                blt  t2, t3, row_loop
                wfi
            "#,
            relu_setup = match self.relu_max {
                Some(max) => format!("li   t6, {max}"),
                None => String::new(),
            },
            relu_apply = match self.relu_max {
                Some(_) => "p.clip a5, a5, t6".to_string(),
                None => String::new(),
            },
        );
        Ok(Program::assemble(&src)?)
    }

    fn setup(&self, cluster: &mut Cluster) -> Result<(), KernelError> {
        let (img, wts, out) = self.layout(cluster);
        for y in 0..self.height {
            for x in 0..self.width {
                cluster.write_spm_word(img + (y * self.width + x) * 4, self.pixel(x, y))?;
            }
        }
        for (k, &w) in self.weights.iter().enumerate() {
            cluster.write_spm_word(wts + k as u32 * 4, w)?;
        }
        let (out_w, out_h) = self.out_dims();
        for i in 0..out_w * out_h {
            cluster.write_spm_word(out + i * 4, 0)?;
        }
        Ok(())
    }

    fn verify(&self, cluster: &Cluster) -> Result<(), KernelError> {
        let (_, _, out) = self.layout(cluster);
        let (out_w, out_h) = self.out_dims();
        for oy in 0..out_h {
            for ox in 0..out_w {
                let got = cluster.read_spm_word(out + (oy * out_w + ox) * 4)?;
                let expected = self.expected(ox, oy);
                if got != expected {
                    return Err(KernelError::Mismatch {
                        detail: format!("out[{oy}][{ox}] = {got}, expected {expected}"),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::ClusterConfig;
    use mempool_sim::SimParams;

    fn cluster() -> Cluster {
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(256)
            .build()
            .unwrap();
        Cluster::new(cfg, SimParams::default())
    }

    #[test]
    fn identity_kernel_copies_the_center() {
        let mut weights = [0u32; 9];
        weights[4] = 1; // center tap
        let conv = Conv2d::new(18, 18, weights);
        let mut c = cluster();
        conv.run(&mut c, 10_000_000).expect("conv2d failed");
    }

    #[test]
    fn box_blur_sums_the_neighborhood() {
        let conv = Conv2d::new(34, 18, [1; 9]);
        let mut c = cluster();
        conv.run(&mut c, 10_000_000).expect("conv2d failed");
    }

    #[test]
    fn weighted_kernel_matches_reference() {
        let conv = Conv2d::new(18, 34, [1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut c = cluster();
        conv.run(&mut c, 10_000_000).expect("conv2d failed");
    }

    #[test]
    fn relu_clips_through_p_clip() {
        // Box blur of values up to 9*22 = ~200; clip at 50 forces the
        // ceiling on many outputs.
        let conv = Conv2d::new(18, 18, [1; 9]).with_relu(50);
        let mut c = cluster();
        conv.run(&mut c, 10_000_000).expect("clipped conv2d failed");
        // At least one output actually hit the ceiling, so the clip path
        // was exercised.
        let (out_w, out_h) = conv.out_dims();
        let clipped = (0..out_h)
            .flat_map(|y| (0..out_w).map(move |x| (x, y)))
            .filter(|&(x, y)| conv.expected(x, y) == 50)
            .count();
        assert!(clipped > 0, "test values never reached the ReLU ceiling");
    }

    #[test]
    fn rejects_band_count_mismatch() {
        let conv = Conv2d::new(18, 20, [1; 9]); // out_h = 18, not /16
        let c = cluster();
        assert!(matches!(
            conv.program(&c),
            Err(KernelError::BadShape { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn tiny_images_panic() {
        let _ = Conv2d::new(2, 8, [0; 9]);
    }
}
