//! A sense-reversing barrier built on the A-extension atomics.
//!
//! MemPool synchronizes its cores through the shared SPM. The barrier here
//! is the classic central-counter, generation-flag scheme: each arriving
//! core atomically increments the counter; the last arrival resets it and
//! bumps the generation, releasing the spinners. Its cost — which the
//! paper's "static overhead due to loop setup and synchronization"
//! includes — *emerges* from the simulator's bank serialization rather
//! than being assumed.

/// Returns assembly for one barrier across `num_cores` cores.
///
/// The snippet clobbers `t0`-`t4` and expects:
///
/// * `s10` — address of the counter word (initially 0);
/// * `s11` — address of the generation word (initially 0).
///
/// `suffix` uniquifies the labels so multiple barriers can appear in one
/// program.
pub fn barrier_asm(num_cores: u32, suffix: &str) -> String {
    format!(
        r#"
            lw   t0, 0(s11)            # my generation
            li   t1, 1
            amoadd.w t2, t1, (s10)
            addi t2, t2, 1
            li   t3, {num_cores}
            bne  t2, t3, bar_wait_{suffix}
            sw   zero, 0(s10)          # last arrival: reset + release
            addi t4, t0, 1
            sw   t4, 0(s11)
            j    bar_done_{suffix}
        bar_wait_{suffix}:
            lw   t4, 0(s11)
            beq  t4, t0, bar_wait_{suffix}
        bar_done_{suffix}:
        "#
    )
}

/// Returns assembly for a two-level tree barrier: cores first synchronize
/// within their tile (on a counter in the tile's own sequential region,
/// one cycle away), then one representative per tile joins a global
/// barrier. This cuts the serialized traffic on the global bank from
/// `num_cores` to `num_tiles` atomics and is how shared-L1 clusters keep
/// barrier cost sub-linear in the core count.
///
/// The snippet clobbers `t0`-`t6` and expects:
///
/// * `s8` — address of this tile's local counter word (tile-local SPM);
/// * `s9` — address of this tile's local generation word;
/// * `s10` — address of the global counter word;
/// * `s11` — address of the global generation word;
/// * all four words initially 0.
pub fn tree_barrier_asm(cores_per_tile: u32, num_tiles: u32, suffix: &str) -> String {
    format!(
        r#"
            # --- level 1: tile-local barrier ---
            lw   t0, 0(s9)             # my tile generation
            li   t1, 1
            amoadd.w t2, t1, (s8)
            addi t2, t2, 1
            li   t3, {cores_per_tile}
            bne  t2, t3, tree_wait_l1_{suffix}
            # last core of the tile: reset and join the global barrier
            sw   zero, 0(s8)
            lw   t5, 0(s11)            # global generation
            amoadd.w t2, t1, (s10)
            addi t2, t2, 1
            li   t4, {num_tiles}
            bne  t2, t4, tree_wait_l2_{suffix}
            sw   zero, 0(s10)          # last tile: release globally
            addi t6, t5, 1
            sw   t6, 0(s11)
            j    tree_release_{suffix}
        tree_wait_l2_{suffix}:
            lw   t6, 0(s11)
            beq  t6, t5, tree_wait_l2_{suffix}
        tree_release_{suffix}:
            addi t4, t0, 1             # release my tile
            sw   t4, 0(s9)
            j    tree_done_{suffix}
        tree_wait_l1_{suffix}:
            lw   t4, 0(s9)
            beq  t4, t0, tree_wait_l1_{suffix}
        tree_done_{suffix}:
        "#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::{AddressMap, ClusterConfig, TileId};
    use mempool_isa::Program;
    use mempool_sim::{Cluster, SimParams};

    /// Every core increments a per-core slot before the barrier and then
    /// checks that *all* slots are set after it.
    #[test]
    fn barrier_orders_all_cores() {
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(4)
            .bank_words(256)
            .build()
            .unwrap();
        let n = cfg.num_cores();
        // Memory map: counter at 0x100, generation at 0x104, flags at
        // 0x200 + 4*hartid, result at 0x300 + 4*hartid.
        let src = format!(
            r#"
                li   s10, 0x100
                li   s11, 0x104
                csrr s0, mhartid
                slli s1, s0, 2
                li   s2, 0x200
                add  s2, s2, s1
                li   s3, 1
                sw   s3, 0(s2)          # set my flag
                {barrier}
                # after the barrier, sum all flags
                li   s4, 0              # sum
                li   s5, 0x200
                li   s6, {n}
            sum_loop:
                lw   s7, 0(s5)
                add  s4, s4, s7
                addi s5, s5, 4
                addi s6, s6, -1
                bnez s6, sum_loop
                li   s8, 0x300
                add  s8, s8, s1
                sw   s4, 0(s8)
                wfi
            "#,
            barrier = barrier_asm(n, "0"),
        );
        let mut cluster = Cluster::new(cfg, SimParams::default());
        cluster.load_program(Program::assemble(&src).unwrap());
        cluster.preload_icaches();
        cluster.run(1_000_000).unwrap();
        for core in 0..n {
            let sum = cluster.read_spm_word(0x300 + 4 * core).unwrap();
            assert_eq!(sum, n, "core {core} saw {sum}/{n} flags");
        }
    }

    fn tree_program(cfg: &ClusterConfig, map: &AddressMap, check_flags: bool) -> String {
        let n = cfg.num_cores();
        let seq_bytes = map.seq_bytes_per_tile();
        let global_counter = map.interleaved_addr(0);
        let global_gen = map.interleaved_addr(1);
        let flags = map.interleaved_addr(2);
        let check = if check_flags {
            format!(
                r#"
                li   s4, 0
                li   s5, {flags}
                li   s6, {n}
            sum_loop:
                lw   s7, 0(s5)
                add  s4, s4, s7
                addi s5, s5, 4
                addi s6, s6, -1
                bnez s6, sum_loop
                li   s2, {flags}
                csrr s0, mhartid
                slli s1, s0, 2
                add  s2, s2, s1
                sw   s4, 256(s2)       # results after the flag array
                "#
            )
        } else {
            String::new()
        };
        let set_flag = if check_flags {
            format!(
                r#"
                csrr s0, mhartid
                slli s1, s0, 2
                li   s2, {flags}
                add  s2, s2, s1
                li   s3, 1
                sw   s3, 0(s2)
                "#
            )
        } else {
            String::new()
        };
        format!(
            r#"
                csrr t0, mhartid
                li   t1, {cores_per_tile}
                divu t2, t0, t1          # my tile
                li   t3, {seq_bytes}
                mul  t4, t2, t3
                addi s8, t4, 16          # tile-local counter
                addi s9, t4, 20          # tile-local generation
                li   s10, {global_counter}
                li   s11, {global_gen}
                {set_flag}
                {tree}
                {check}
                wfi
            "#,
            cores_per_tile = cfg.cores_per_tile(),
            tree = tree_barrier_asm(cfg.cores_per_tile(), cfg.num_tiles(), "0"),
        )
    }

    #[test]
    fn tree_barrier_orders_all_cores() {
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(16)
            .cores_per_tile(4)
            .banks_per_tile(4)
            .bank_words(256)
            .build()
            .unwrap();
        let n = cfg.num_cores();
        let mut cluster = Cluster::new(cfg.clone(), SimParams::default());
        let map = cluster.storage().map().clone();
        let src = tree_program(&cfg, &map, true);
        cluster.load_program(Program::assemble(&src).unwrap());
        cluster.preload_icaches();
        cluster.run(10_000_000).unwrap();
        let results_base = map.interleaved_addr(2) + 256;
        for core in 0..n {
            let sum = cluster.read_spm_word(results_base + 4 * core).unwrap();
            assert_eq!(sum, n, "core {core} saw {sum}/{n} flags");
        }
        // The local seq-region counters must not have leaked into tile 0's
        // global words.
        let _ = TileId(0);
    }

    #[test]
    fn tree_barrier_beats_central_barrier_at_scale() {
        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(16)
            .cores_per_tile(4)
            .banks_per_tile(4)
            .bank_words(256)
            .build()
            .unwrap();
        let n = cfg.num_cores();

        let mut central = Cluster::new(cfg.clone(), SimParams::default());
        let map = central.storage().map().clone();
        let central_src = format!(
            "li s10, {}\nli s11, {}\n{}\nwfi",
            map.interleaved_addr(0),
            map.interleaved_addr(1),
            barrier_asm(n, "0")
        );
        central.load_program(Program::assemble(&central_src).unwrap());
        central.preload_icaches();
        let central_cycles = central.run(10_000_000).unwrap();

        let mut tree = Cluster::new(cfg.clone(), SimParams::default());
        let tree_src = tree_program(&cfg, &map, false);
        tree.load_program(Program::assemble(&tree_src).unwrap());
        tree.preload_icaches();
        let tree_cycles = tree.run(10_000_000).unwrap();

        assert!(
            tree_cycles < central_cycles,
            "tree barrier ({tree_cycles}) must beat the central one ({central_cycles}) over {n} cores"
        );
    }

    /// The barrier's cost should grow with the core count (serialized
    /// atomics on one bank).
    #[test]
    fn barrier_cost_grows_with_cores() {
        let mut costs = Vec::new();
        for (tiles, cores) in [(1u32, 2u32), (4, 4)] {
            let cfg = ClusterConfig::builder()
                .groups(1)
                .tiles_per_group(tiles)
                .cores_per_tile(cores)
                .banks_per_tile(4)
                .bank_words(256)
                .build()
                .unwrap();
            let n = cfg.num_cores();
            let src = format!("li s10, 0x100\nli s11, 0x104\n{}\nwfi", barrier_asm(n, "0"));
            let mut cluster = Cluster::new(cfg, SimParams::default());
            cluster.load_program(Program::assemble(&src).unwrap());
            cluster.preload_icaches();
            let cycles = cluster.run(1_000_000).unwrap();
            costs.push((n, cycles));
        }
        assert!(
            costs[1].1 > costs[0].1,
            "barrier over {} cores ({} cycles) should cost more than over {} ({} cycles)",
            costs[1].0,
            costs[1].1,
            costs[0].0,
            costs[0].1
        );
    }
}
