//! Deterministic fault injection and resilience for the MemPool cluster
//! simulator.
//!
//! 3D-stacked designs like MemPool-3D trade the 2D layout's routing
//! congestion for new physical failure modes: open or marginal F2F bumps
//! on the die-to-die interface, defective SRAM banks on the memory die,
//! and radiation-induced transient upsets. This crate models those faults
//! and the corresponding resilience machinery:
//!
//! * [`FaultPlan`] / [`FaultConfig`] — a deterministic, seeded schedule of
//!   faults ([`FaultEvent`]): degraded or dead F2F links, stuck banks,
//!   transient bit flips, core hangs. The same `(seed, rate, geometry)`
//!   triple always yields the identical plan.
//! * [`FaultController`] — runtime state the simulator consults each
//!   cycle: per-tile [`LinkState`], timed events, and the accumulating
//!   [`FaultReport`].
//! * [`EccState`] — SEC-DED model: single-bit upsets are corrected (and
//!   scrubbed) at a latency cost; multi-bit upsets raise a typed error.
//! * [`Watchdog`] / [`CoreDiagnostic`] — forward-progress deadlock
//!   detection with a per-core snapshot explaining *why* the cluster
//!   stopped making progress.
//!
//! The simulator (`mempool-sim`) wires these into its cycle loop; the
//! `repro` binary exposes them via `--faults SEED[:RATE]` and
//! `--watchdog N`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod ecc;
pub mod plan;
pub mod report;
pub mod rng;
pub mod watchdog;

pub use controller::{FaultController, LinkState, TimedFault};
pub use ecc::{EccOutcome, EccState};
pub use plan::{DeadLinkPolicy, FaultConfig, FaultEvent, FaultPlan};
pub use report::{FaultReport, RemappedBank};
pub use rng::XorShift64;
pub use watchdog::{CoreDiagnostic, Watchdog};

#[cfg(test)]
mod properties {
    use mempool_arch::ClusterConfig;
    use proptest::prelude::*;

    use crate::plan::{FaultConfig, FaultPlan};

    fn geometry(tiles: u32, banks: u32) -> ClusterConfig {
        ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(tiles)
            .cores_per_tile(4)
            .banks_per_tile(banks)
            .bank_words(256)
            .build()
            .expect("valid geometry")
    }

    proptest! {
        /// Any seed/rate/geometry combination yields the identical fault
        /// schedule when generated twice — the property the whole
        /// reproducibility story rests on.
        #[test]
        fn any_seed_yields_identical_schedules(
            seed in any::<u64>(),
            rate_exp in 3u32..12,
            tiles_exp in 0u32..3,
            banks_log in 2u32..5,
        ) {
            // tiles_per_group must be a perfect square: 1, 4, or 16.
            let cluster = geometry(1 << (2 * tiles_exp), 1 << banks_log);
            let rate = 10f64.powi(-(rate_exp as i32));
            let cfg = FaultConfig::new(seed, rate);
            let first = FaultPlan::generate(&cfg, &cluster);
            let second = FaultPlan::generate(&cfg, &cluster);
            prop_assert_eq!(&first, &second);
            // rate > 0 always floors to at least one degraded link and
            // one stuck bank.
            prop_assert!(first.len() >= 2);
        }
    }
}
