//! The fault report: what was injected and what the resilience machinery
//! did about it.

use std::fmt;

use mempool_obs::Json;

/// One spare-bank substitution performed by the remap policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemappedBank {
    /// Tile holding the faulted bank.
    pub tile: u32,
    /// The faulted (logical) bank.
    pub from_bank: u32,
    /// The spare bank now backing it.
    pub to_bank: u32,
}

/// Summary of a fault-injected run, exported as an artifact by `repro`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Seed of the fault plan.
    pub seed: u64,
    /// Injected degraded (retry-path) F2F links.
    pub links_degraded: u64,
    /// Injected dead (open) F2F links.
    pub links_dead: u64,
    /// Injected stuck banks.
    pub stuck_banks: u64,
    /// Injected transient bit flips.
    pub transient_flips: u64,
    /// Injected core hangs.
    pub core_hangs: u64,
    /// Spare-bank substitutions performed before the run.
    pub remapped: Vec<RemappedBank>,
    /// Accesses that went through a degraded link's retry path.
    pub retried_accesses: u64,
    /// Extra cycles spent in retries (summed over all cores).
    pub retry_cycles: u64,
    /// Single-bit errors corrected (and scrubbed) by the ECC model.
    pub ecc_corrected: u64,
    /// Flipped words never read before the run ended (errors still
    /// latent in storage).
    pub ecc_pending: u64,
    /// Requests dropped by dead links under the black-hole policy.
    pub blackholed_requests: u64,
}

impl FaultReport {
    /// Total injected fault events.
    pub fn total_injected(&self) -> u64 {
        self.links_degraded
            + self.links_dead
            + self.stuck_banks
            + self.transient_flips
            + self.core_hangs
    }

    /// Serializes the report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Int(self.seed as i64)),
            (
                "injected",
                Json::obj([
                    ("links_degraded", Json::Int(self.links_degraded as i64)),
                    ("links_dead", Json::Int(self.links_dead as i64)),
                    ("stuck_banks", Json::Int(self.stuck_banks as i64)),
                    ("transient_flips", Json::Int(self.transient_flips as i64)),
                    ("core_hangs", Json::Int(self.core_hangs as i64)),
                    ("total", Json::Int(self.total_injected() as i64)),
                ]),
            ),
            (
                "remapped_banks",
                Json::Arr(
                    self.remapped
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("tile", Json::Int(r.tile as i64)),
                                ("from_bank", Json::Int(r.from_bank as i64)),
                                ("to_bank", Json::Int(r.to_bank as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("retried_accesses", Json::Int(self.retried_accesses as i64)),
            ("retry_cycles", Json::Int(self.retry_cycles as i64)),
            ("ecc_corrected", Json::Int(self.ecc_corrected as i64)),
            ("ecc_pending", Json::Int(self.ecc_pending as i64)),
            (
                "blackholed_requests",
                Json::Int(self.blackholed_requests as i64),
            ),
        ])
    }

    /// Rebuilds a report from its [`Self::to_json`] document (used by
    /// checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("fault report: missing or invalid '{key}'"))
        }
        let injected = doc
            .get("injected")
            .ok_or_else(|| "fault report: missing 'injected'".to_string())?;
        let remapped = doc
            .get("remapped_banks")
            .and_then(Json::as_arr)
            .ok_or_else(|| "fault report: missing 'remapped_banks'".to_string())?
            .iter()
            .map(|entry| {
                Ok(RemappedBank {
                    tile: u64_field(entry, "tile")? as u32,
                    from_bank: u64_field(entry, "from_bank")? as u32,
                    to_bank: u64_field(entry, "to_bank")? as u32,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FaultReport {
            seed: u64_field(doc, "seed")?,
            links_degraded: u64_field(injected, "links_degraded")?,
            links_dead: u64_field(injected, "links_dead")?,
            stuck_banks: u64_field(injected, "stuck_banks")?,
            transient_flips: u64_field(injected, "transient_flips")?,
            core_hangs: u64_field(injected, "core_hangs")?,
            remapped,
            retried_accesses: u64_field(doc, "retried_accesses")?,
            retry_cycles: u64_field(doc, "retry_cycles")?,
            ecc_corrected: u64_field(doc, "ecc_corrected")?,
            ecc_pending: u64_field(doc, "ecc_pending")?,
            blackholed_requests: u64_field(doc, "blackholed_requests")?,
        })
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault report (seed {})", self.seed)?;
        writeln!(
            f,
            "  injected: {} degraded links, {} dead links, {} stuck banks, \
             {} transient flips, {} core hangs",
            self.links_degraded,
            self.links_dead,
            self.stuck_banks,
            self.transient_flips,
            self.core_hangs
        )?;
        writeln!(f, "  banks remapped to spares: {}", self.remapped.len())?;
        writeln!(
            f,
            "  retries: {} accesses, {} extra cycles",
            self.retried_accesses, self.retry_cycles
        )?;
        write!(
            f,
            "  ecc: {} corrected, {} latent; black-holed requests: {}",
            self.ecc_corrected, self.ecc_pending, self.blackholed_requests
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_and_display_carry_all_counters() {
        let report = FaultReport {
            seed: 42,
            links_degraded: 2,
            stuck_banks: 1,
            transient_flips: 3,
            remapped: vec![RemappedBank {
                tile: 0,
                from_bank: 5,
                to_bank: 16,
            }],
            retried_accesses: 10,
            retry_cycles: 40,
            ecc_corrected: 1,
            ecc_pending: 2,
            ..Default::default()
        };
        assert_eq!(report.total_injected(), 6);
        let json = report.to_json();
        assert_eq!(json.get("seed").unwrap().as_int(), Some(42));
        assert_eq!(
            json.get("injected").unwrap().get("total").unwrap().as_int(),
            Some(6)
        );
        assert_eq!(
            json.get("remapped_banks").unwrap().as_arr().unwrap().len(),
            1
        );
        let text = report.to_string();
        assert!(text.contains("seed 42"));
        assert!(text.contains("1 stuck banks"));
        assert!(text.contains("40 extra cycles"));
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let report = FaultReport {
            seed: 7,
            links_dead: 1,
            core_hangs: 2,
            remapped: vec![RemappedBank {
                tile: 3,
                from_bank: 1,
                to_bank: 16,
            }],
            blackholed_requests: 9,
            ..Default::default()
        };
        let doc = Json::parse(&report.to_json().to_pretty()).unwrap();
        assert_eq!(FaultReport::from_json(&doc).unwrap(), report);
        assert!(FaultReport::from_json(&Json::obj([])).is_err());
    }
}
