//! SEC-DED ECC model for the stacked SRAM banks.
//!
//! Each SPM word is modeled as protected by a single-error-correct,
//! double-error-detect code. The simulator applies transient flips
//! directly to storage and records the accumulated XOR error mask per
//! word here; on the next read of the word the outcome is decided:
//!
//! * **single-bit mask** — corrected: the reader sees the original value,
//!   pays a correction penalty, and the word is scrubbed (storage
//!   rewritten, mask cleared);
//! * **multi-bit mask** — detected but uncorrectable: a typed error;
//! * any **write** to the word clears its mask (the write replaces the
//!   corrupted cell contents).

use std::collections::HashMap;

use mempool_arch::BankLocation;

/// Outcome of reading a word through the SEC-DED model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No pending error on this word.
    Clean,
    /// A single-bit error was corrected; `value` is the repaired word the
    /// reader must observe (and scrub back into storage).
    Corrected {
        /// The repaired word.
        value: u32,
    },
    /// A multi-bit error was detected but cannot be corrected.
    Uncorrectable {
        /// The accumulated error mask.
        mask: u32,
    },
}

/// Pending error masks of all SPM words, keyed by (logical) location.
#[derive(Debug, Clone, Default)]
pub struct EccState {
    pending: HashMap<BankLocation, u32>,
}

impl EccState {
    /// Creates an empty state (no pending errors).
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates a flip mask on a word (XOR; a zero result clears it).
    pub fn note_flip(&mut self, loc: BankLocation, mask: u32) {
        let entry = self.pending.entry(loc).or_insert(0);
        *entry ^= mask;
        if *entry == 0 {
            self.pending.remove(&loc);
        }
    }

    /// Decides the outcome of reading `stored` (the possibly-corrupted
    /// word in storage) at `loc`. A corrected read clears the mask; the
    /// caller is responsible for scrubbing storage with the returned
    /// value.
    pub fn on_read(&mut self, loc: BankLocation, stored: u32) -> EccOutcome {
        match self.pending.get(&loc).copied() {
            None => EccOutcome::Clean,
            Some(mask) if mask.count_ones() == 1 => {
                self.pending.remove(&loc);
                EccOutcome::Corrected {
                    value: stored ^ mask,
                }
            }
            Some(mask) => EccOutcome::Uncorrectable { mask },
        }
    }

    /// The pending mask on a word, if any, without consuming it (used by
    /// the simulator's zero-time debug reads).
    pub fn pending_mask(&self, loc: BankLocation) -> Option<u32> {
        self.pending.get(&loc).copied()
    }

    /// Clears the pending mask on a word (a write replaced its contents).
    pub fn clear(&mut self, loc: BankLocation) {
        self.pending.remove(&loc);
    }

    /// Number of words with pending (not yet observed) errors.
    pub fn pending_words(&self) -> usize {
        self.pending.len()
    }

    /// All pending `(location, mask)` entries sorted by location, for a
    /// deterministic checkpoint serialization order.
    pub fn entries(&self) -> Vec<(BankLocation, u32)> {
        let mut entries: Vec<(BankLocation, u32)> = self
            .pending
            .iter()
            .map(|(&loc, &mask)| (loc, mask))
            .collect();
        entries.sort_unstable_by_key(|&(loc, _)| (loc.tile.0, loc.bank.0, loc.word));
        entries
    }

    /// Rebuilds the state from saved `(location, mask)` entries (zero
    /// masks are dropped).
    pub fn from_entries(entries: impl IntoIterator<Item = (BankLocation, u32)>) -> Self {
        EccState {
            pending: entries.into_iter().filter(|&(_, m)| m != 0).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::{BankId, TileId};

    fn loc(word: u32) -> BankLocation {
        BankLocation {
            tile: TileId(0),
            bank: BankId(0),
            word,
        }
    }

    #[test]
    fn clean_word_reads_clean() {
        let mut ecc = EccState::new();
        assert_eq!(ecc.on_read(loc(0), 7), EccOutcome::Clean);
    }

    #[test]
    fn single_bit_is_corrected_and_scrubbed() {
        let mut ecc = EccState::new();
        ecc.note_flip(loc(3), 0b100);
        // Storage holds the corrupted word; the read repairs it.
        assert_eq!(
            ecc.on_read(loc(3), 100 ^ 0b100),
            EccOutcome::Corrected { value: 100 }
        );
        // The mask was consumed: the next read is clean.
        assert_eq!(ecc.on_read(loc(3), 100), EccOutcome::Clean);
    }

    #[test]
    fn double_bit_is_uncorrectable() {
        let mut ecc = EccState::new();
        ecc.note_flip(loc(1), 0b11);
        assert_eq!(
            ecc.on_read(loc(1), 0),
            EccOutcome::Uncorrectable { mask: 0b11 }
        );
    }

    #[test]
    fn two_flips_on_same_bit_cancel() {
        let mut ecc = EccState::new();
        ecc.note_flip(loc(2), 0b10);
        ecc.note_flip(loc(2), 0b10);
        assert_eq!(ecc.pending_words(), 0);
        assert_eq!(ecc.on_read(loc(2), 5), EccOutcome::Clean);
    }

    #[test]
    fn two_flips_on_different_bits_accumulate_to_uncorrectable() {
        let mut ecc = EccState::new();
        ecc.note_flip(loc(2), 0b01);
        ecc.note_flip(loc(2), 0b10);
        assert!(matches!(
            ecc.on_read(loc(2), 0),
            EccOutcome::Uncorrectable { mask: 0b11 }
        ));
    }

    #[test]
    fn writes_clear_pending_masks() {
        let mut ecc = EccState::new();
        ecc.note_flip(loc(4), 1);
        ecc.clear(loc(4));
        assert_eq!(ecc.on_read(loc(4), 0), EccOutcome::Clean);
        assert_eq!(ecc.pending_mask(loc(4)), None);
    }
}
