//! Forward-progress watchdog and per-core deadlock diagnostics.
//!
//! The cluster's `step()` loop reports to the watchdog whether *any* core
//! retired an instruction or received a memory response this cycle. When
//! nothing happens for the configured number of cycles, the simulator
//! raises a typed deadlock error carrying a [`CoreDiagnostic`] snapshot —
//! so a hung run explains itself (everyone parked in `wfi` waiting on a
//! black-holed request, a hung core the barrier waits on, ...) instead of
//! spinning until the cycle budget dies.

use std::fmt;

use mempool_obs::Json;

/// Forward-progress watchdog: fires after `threshold` cycles without any
/// retired instruction or delivered memory response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    threshold: u64,
    last_progress: u64,
}

impl Watchdog {
    /// Creates a watchdog armed at `now`; `threshold` is clamped to at
    /// least 1 cycle.
    pub fn new(threshold: u64, now: u64) -> Self {
        Watchdog {
            threshold: threshold.max(1),
            last_progress: now,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Cycle of the last recorded progress (checkpoint/restore needs this
    /// to rebuild an identical watchdog: `Watchdog::new(threshold,
    /// last_progress)`).
    pub fn last_progress(&self) -> u64 {
        self.last_progress
    }

    /// Records that the cluster made forward progress at `cycle`.
    pub fn note_progress(&mut self, cycle: u64) {
        self.last_progress = cycle;
    }

    /// Cycles elapsed since the last recorded progress.
    pub fn stalled_for(&self, cycle: u64) -> u64 {
        cycle.saturating_sub(self.last_progress)
    }

    /// Whether the no-progress window has reached the threshold.
    pub fn expired(&self, cycle: u64) -> bool {
        self.stalled_for(cycle) >= self.threshold
    }
}

/// Snapshot of one core's state at deadlock time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreDiagnostic {
    /// Global core index.
    pub core: u32,
    /// Program counter.
    pub pc: u32,
    /// Whether the core executed `wfi`.
    pub halted: bool,
    /// Whether the core was hung by an injected fault.
    pub hung: bool,
    /// Outstanding memory transactions (never completing ones pin this
    /// above zero).
    pub outstanding: u32,
    /// Instructions retired before the deadlock.
    pub retired: u64,
    /// The core's last few retired instructions (formatted trace lines,
    /// oldest first), when instruction tracing was enabled.
    pub recent: Vec<String>,
}

impl CoreDiagnostic {
    /// One-word summary of the core's condition.
    pub fn condition(&self) -> &'static str {
        if self.hung {
            "hung"
        } else if self.halted && self.outstanding > 0 {
            "wfi-with-outstanding"
        } else if self.halted {
            "halted"
        } else if self.outstanding > 0 {
            "waiting-on-memory"
        } else {
            "runnable"
        }
    }

    /// Serializes the snapshot as a JSON object (for `crashdump.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("core", Json::Int(i64::from(self.core))),
            ("condition", Json::str(self.condition())),
            ("pc", Json::Int(i64::from(self.pc))),
            ("halted", Json::Bool(self.halted)),
            ("hung", Json::Bool(self.hung)),
            ("outstanding", Json::Int(i64::from(self.outstanding))),
            ("retired", Json::Int(self.retired as i64)),
            (
                "recent",
                Json::Arr(self.recent.iter().map(|l| Json::Str(l.clone())).collect()),
            ),
        ])
    }
}

impl fmt::Display for CoreDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {:>3}: {} pc={:#010x} outstanding={} retired={}",
            self.core,
            self.condition(),
            self.pc,
            self.outstanding,
            self.retired
        )?;
        for line in &self.recent {
            write!(f, "\n    {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_only_after_threshold_without_progress() {
        let mut w = Watchdog::new(10, 0);
        assert!(!w.expired(9));
        assert!(w.expired(10));
        w.note_progress(10);
        assert!(!w.expired(19));
        assert!(w.expired(20));
        assert_eq!(w.stalled_for(15), 5);
    }

    #[test]
    fn zero_threshold_is_clamped() {
        let w = Watchdog::new(0, 5);
        assert_eq!(w.threshold(), 1);
        assert!(!w.expired(5));
        assert!(w.expired(6));
    }

    #[test]
    fn diagnostic_conditions_and_display() {
        let d = CoreDiagnostic {
            core: 3,
            pc: 0x40,
            halted: true,
            hung: false,
            outstanding: 1,
            retired: 17,
            recent: Vec::new(),
        };
        assert_eq!(d.condition(), "wfi-with-outstanding");
        let text = d.to_string();
        assert!(text.contains("core   3"));
        assert!(text.contains("outstanding=1"));

        let hung = CoreDiagnostic {
            hung: true,
            ..d.clone()
        };
        assert_eq!(hung.condition(), "hung");
        let halted = CoreDiagnostic {
            outstanding: 0,
            ..d.clone()
        };
        assert_eq!(halted.condition(), "halted");
        let waiting = CoreDiagnostic {
            halted: false,
            ..d.clone()
        };
        assert_eq!(waiting.condition(), "waiting-on-memory");
        let runnable = CoreDiagnostic {
            halted: false,
            outstanding: 0,
            ..d
        };
        assert_eq!(runnable.condition(), "runnable");
    }

    #[test]
    fn display_appends_recent_instruction_window() {
        let d = CoreDiagnostic {
            core: 1,
            outstanding: 1,
            recent: vec!["100  1  0x80  lw x5, 0(x6)".to_string()],
            ..CoreDiagnostic::default()
        };
        let text = d.to_string();
        assert!(text.contains("waiting-on-memory"));
        assert!(text.contains("\n    100  1  0x80  lw x5, 0(x6)"));
    }

    #[test]
    fn diagnostic_json_parses_and_carries_recent_window() {
        let d = CoreDiagnostic {
            core: 2,
            pc: 0x80,
            hung: true,
            retired: 42,
            recent: vec!["a".to_string(), "b".to_string()],
            ..CoreDiagnostic::default()
        };
        let doc = Json::parse(&d.to_json().to_pretty()).unwrap();
        assert_eq!(doc.get("condition").and_then(Json::as_str), Some("hung"));
        assert_eq!(doc.get("retired").and_then(Json::as_int), Some(42));
        assert_eq!(
            doc.get("recent").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }
}
