//! Runtime fault state consumed by the simulator.
//!
//! A [`FaultController`] is compiled from a [`FaultPlan`] when faults are
//! injected into a cluster. It splits the plan into *static* state (link
//! health per tile, the stuck banks the cluster must remap before the run)
//! and *timed* events (flips, hangs) delivered in cycle order, carries the
//! SEC-DED [`EccState`], and accumulates the [`FaultReport`].

use mempool_arch::{BankId, BankLocation, TileId};
use mempool_obs::FlightRecorder;

use crate::ecc::{EccOutcome, EccState};
use crate::plan::{DeadLinkPolicy, FaultEvent, FaultPlan};
use crate::report::{FaultReport, RemappedBank};

/// Health of one tile's F2F link to its memory die.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LinkState {
    /// Accesses proceed at nominal latency.
    #[default]
    Healthy,
    /// Accesses succeed after a retry costing the carried extra cycles.
    Degraded(u32),
    /// Accesses fail (see [`DeadLinkPolicy`]).
    Dead,
}

/// A timed fault due for application this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedFault {
    /// XOR `mask` into the stored word at `loc` and record it for ECC.
    Flip {
        /// Word the flip lands in.
        loc: BankLocation,
        /// XOR mask to apply.
        mask: u32,
    },
    /// Hang the given core (it stops fetching forever).
    Hang {
        /// Global core index.
        core: u32,
    },
}

/// Runtime fault state: link health, the timed-event queue, ECC state,
/// and the accumulating report.
#[derive(Debug, Clone)]
pub struct FaultController {
    links: Vec<LinkState>,
    /// Timed events sorted by cycle; `cursor` marks the next undelivered.
    timed: Vec<(u64, TimedFault)>,
    cursor: usize,
    ecc: EccState,
    stuck: Vec<(TileId, BankId)>,
    dead_link_policy: DeadLinkPolicy,
    report: FaultReport,
    flight: Option<FlightRecorder>,
}

impl FaultController {
    /// Compiles a plan for a cluster with `num_tiles` tiles. Events whose
    /// tile/core lies outside the geometry are counted but inert.
    pub fn new(plan: &FaultPlan, num_tiles: u32) -> Self {
        let mut links = vec![LinkState::Healthy; num_tiles as usize];
        let mut timed = Vec::new();
        let mut stuck = Vec::new();
        let mut report = FaultReport {
            seed: plan.seed(),
            ..Default::default()
        };
        for event in plan.events() {
            match *event {
                FaultEvent::LinkDegraded {
                    tile,
                    extra_latency,
                } => {
                    report.links_degraded += 1;
                    if let Some(slot) = links.get_mut(tile.index()) {
                        // A dead link stays dead even if also degraded.
                        if *slot != LinkState::Dead {
                            *slot = LinkState::Degraded(extra_latency.max(1));
                        }
                    }
                }
                FaultEvent::LinkDead { tile } => {
                    report.links_dead += 1;
                    if let Some(slot) = links.get_mut(tile.index()) {
                        *slot = LinkState::Dead;
                    }
                }
                FaultEvent::StuckBank { tile, bank } => {
                    report.stuck_banks += 1;
                    stuck.push((tile, bank));
                }
                FaultEvent::TransientFlip { cycle, loc, mask } => {
                    report.transient_flips += 1;
                    timed.push((cycle, TimedFault::Flip { loc, mask }));
                }
                FaultEvent::CoreHang { cycle, core } => {
                    report.core_hangs += 1;
                    timed.push((cycle, TimedFault::Hang { core: core.0 }));
                }
            }
        }
        timed.sort_by_key(|&(cycle, _)| cycle);
        FaultController {
            links,
            timed,
            cursor: 0,
            ecc: EccState::new(),
            stuck,
            dead_link_policy: plan.dead_link_policy(),
            report,
            flight: None,
        }
    }

    /// Mirrors fault activity (timed-fault delivery, ECC outcomes, retries,
    /// black holes, remaps) into a shared flight-event ring.
    pub fn attach_flight(&mut self, flight: FlightRecorder) {
        self.flight = Some(flight);
    }

    fn emit(&self, cycle: u64, category: &str, core: Option<u32>, message: String) {
        if let Some(flight) = &self.flight {
            flight.record(cycle, category, core, message);
        }
    }

    /// The stuck banks the cluster must remap before the run starts.
    pub fn stuck_banks(&self) -> &[(TileId, BankId)] {
        &self.stuck
    }

    /// Health of a tile's F2F link.
    pub fn link_state(&self, tile: TileId) -> LinkState {
        self.links
            .get(tile.index())
            .copied()
            .unwrap_or(LinkState::Healthy)
    }

    /// What happens to accesses through dead links.
    pub fn dead_link_policy(&self) -> DeadLinkPolicy {
        self.dead_link_policy
    }

    /// Drains the timed events due at or before `cycle`, in cycle order.
    pub fn take_due(&mut self, cycle: u64) -> Vec<TimedFault> {
        let mut due = Vec::new();
        while let Some(&(at, fault)) = self.timed.get(self.cursor) {
            if at > cycle {
                break;
            }
            match fault {
                TimedFault::Flip { loc, mask } => self.emit(
                    cycle,
                    "fault",
                    None,
                    format!(
                        "transient flip mask {mask:#x} at tile {} bank {} word {}",
                        loc.tile.0, loc.bank.0, loc.word
                    ),
                ),
                TimedFault::Hang { core } => {
                    self.emit(cycle, "fault", Some(core), format!("core {core} hung"));
                }
            }
            due.push(fault);
            self.cursor += 1;
        }
        due
    }

    /// Records an applied flip in the ECC state.
    pub fn note_flip(&mut self, loc: BankLocation, mask: u32) {
        self.ecc.note_flip(loc, mask);
    }

    /// ECC check on a read of `stored` at `loc`; corrections are counted.
    /// Non-clean outcomes are mirrored to the flight ring at `cycle`.
    pub fn ecc_read(&mut self, cycle: u64, loc: BankLocation, stored: u32) -> EccOutcome {
        let outcome = self.ecc.on_read(loc, stored);
        match outcome {
            EccOutcome::Corrected { .. } => {
                self.report.ecc_corrected += 1;
                self.emit(
                    cycle,
                    "ecc",
                    None,
                    format!(
                        "corrected single-bit flip at tile {} bank {} word {}",
                        loc.tile.0, loc.bank.0, loc.word
                    ),
                );
            }
            EccOutcome::Uncorrectable { mask } => self.emit(
                cycle,
                "ecc",
                None,
                format!(
                    "uncorrectable mask {mask:#x} at tile {} bank {} word {}",
                    loc.tile.0, loc.bank.0, loc.word
                ),
            ),
            EccOutcome::Clean => {}
        }
        outcome
    }

    /// Pending error mask on a word, without consuming it.
    pub fn pending_mask(&self, loc: BankLocation) -> Option<u32> {
        self.ecc.pending_mask(loc)
    }

    /// Whether any word has a pending error mask (fast-path guard for
    /// write-side clearing).
    pub fn has_pending_errors(&self) -> bool {
        self.ecc.pending_words() > 0
    }

    /// Clears the pending mask on a written word.
    pub fn ecc_clear(&mut self, loc: BankLocation) {
        self.ecc.clear(loc);
    }

    /// Records a spare-bank substitution.
    pub fn record_remap(&mut self, tile: TileId, from: BankId, to: BankId) {
        self.emit(
            0,
            "fault",
            None,
            format!(
                "stuck bank {} on tile {} remapped to spare {}",
                from.0, tile.0, to.0
            ),
        );
        self.report.remapped.push(RemappedBank {
            tile: tile.0,
            from_bank: from.0,
            to_bank: to.0,
        });
    }

    /// Records one retried access through `tile`'s degraded link at
    /// `cycle`, costing `extra` cycles.
    pub fn record_retry(&mut self, cycle: u64, tile: TileId, extra: u64) {
        self.emit(
            cycle,
            "fault",
            None,
            format!(
                "retry through degraded link of tile {} (+{extra} cycles)",
                tile.0
            ),
        );
        self.report.retried_accesses += 1;
        self.report.retry_cycles += extra;
    }

    /// Records a request from `core` dropped by `tile`'s dead link at
    /// `cycle`.
    pub fn record_blackhole(&mut self, cycle: u64, tile: TileId, core: u32) {
        self.emit(
            cycle,
            "fault",
            Some(core),
            format!("request black-holed by dead link of tile {}", tile.0),
        );
        self.report.blackholed_requests += 1;
    }

    /// Snapshot of the report, including currently latent ECC errors.
    pub fn report(&self) -> FaultReport {
        let mut report = self.report.clone();
        report.ecc_pending = self.ecc.pending_words() as u64;
        report
    }

    /// Checkpoint accessor: link health per tile.
    pub fn links(&self) -> &[LinkState] {
        &self.links
    }

    /// Checkpoint accessor: the timed events not yet delivered, in cycle
    /// order. Already-delivered events (before the cursor) are dropped —
    /// they have been applied to the cluster and live on in its state.
    pub fn remaining_timed(&self) -> &[(u64, TimedFault)] {
        &self.timed[self.cursor..]
    }

    /// Checkpoint accessor: the ECC state (sorted entries via
    /// [`EccState::entries`]).
    pub fn ecc_state(&self) -> &EccState {
        &self.ecc
    }

    /// Rebuilds a controller from checkpointed parts: remaining timed
    /// events become the whole queue (cursor 0), and no flight ring is
    /// attached (the cluster re-attaches one when flight recording is
    /// re-enabled).
    pub fn from_snapshot(
        links: Vec<LinkState>,
        remaining_timed: Vec<(u64, TimedFault)>,
        ecc: EccState,
        stuck: Vec<(TileId, BankId)>,
        dead_link_policy: DeadLinkPolicy,
        report: FaultReport,
    ) -> Self {
        FaultController {
            links,
            timed: remaining_timed,
            cursor: 0,
            ecc,
            stuck,
            dead_link_policy,
            report,
            flight: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_arch::GlobalCoreId;

    fn loc(tile: u32, bank: u32, word: u32) -> BankLocation {
        BankLocation {
            tile: TileId(tile),
            bank: BankId(bank),
            word,
        }
    }

    fn plan_with_everything() -> FaultPlan {
        let mut plan = FaultPlan::new(99);
        plan.push(FaultEvent::LinkDegraded {
            tile: TileId(1),
            extra_latency: 6,
        });
        plan.push(FaultEvent::LinkDead { tile: TileId(2) });
        plan.push(FaultEvent::StuckBank {
            tile: TileId(0),
            bank: BankId(3),
        });
        plan.push(FaultEvent::TransientFlip {
            cycle: 10,
            loc: loc(0, 0, 7),
            mask: 1,
        });
        plan.push(FaultEvent::TransientFlip {
            cycle: 5,
            loc: loc(0, 1, 2),
            mask: 2,
        });
        plan.push(FaultEvent::CoreHang {
            cycle: 20,
            core: GlobalCoreId::new(3),
        });
        plan
    }

    #[test]
    fn compiles_static_state_and_counts() {
        let ctrl = FaultController::new(&plan_with_everything(), 4);
        assert_eq!(ctrl.link_state(TileId(0)), LinkState::Healthy);
        assert_eq!(ctrl.link_state(TileId(1)), LinkState::Degraded(6));
        assert_eq!(ctrl.link_state(TileId(2)), LinkState::Dead);
        assert_eq!(ctrl.link_state(TileId(99)), LinkState::Healthy);
        assert_eq!(ctrl.stuck_banks(), &[(TileId(0), BankId(3))]);
        let report = ctrl.report();
        assert_eq!(report.total_injected(), 6);
        assert_eq!(report.seed, 99);
    }

    #[test]
    fn timed_events_drain_in_cycle_order() {
        let mut ctrl = FaultController::new(&plan_with_everything(), 4);
        assert!(ctrl.take_due(4).is_empty());
        let at5 = ctrl.take_due(5);
        assert_eq!(at5.len(), 1);
        assert!(matches!(at5[0], TimedFault::Flip { mask: 2, .. }));
        // Jumping the clock past both remaining events delivers both.
        let rest = ctrl.take_due(100);
        assert_eq!(rest.len(), 2);
        assert!(matches!(rest[0], TimedFault::Flip { mask: 1, .. }));
        assert!(matches!(rest[1], TimedFault::Hang { core: 3 }));
        assert!(ctrl.take_due(1_000_000).is_empty());
    }

    #[test]
    fn dead_link_survives_degradation_order() {
        let mut plan = FaultPlan::new(1);
        plan.push(FaultEvent::LinkDead { tile: TileId(0) });
        plan.push(FaultEvent::LinkDegraded {
            tile: TileId(0),
            extra_latency: 3,
        });
        let ctrl = FaultController::new(&plan, 1);
        assert_eq!(ctrl.link_state(TileId(0)), LinkState::Dead);
    }

    #[test]
    fn report_tracks_runtime_counters_and_latent_errors() {
        let mut ctrl = FaultController::new(&FaultPlan::new(7), 1);
        ctrl.record_retry(10, TileId(0), 5);
        ctrl.record_retry(11, TileId(0), 5);
        ctrl.record_blackhole(12, TileId(0), 0);
        ctrl.record_remap(TileId(0), BankId(1), BankId(4));
        ctrl.note_flip(loc(0, 0, 0), 1);
        ctrl.note_flip(loc(0, 0, 1), 1);
        // Reading one corrects it; the other stays latent.
        assert!(matches!(
            ctrl.ecc_read(13, loc(0, 0, 0), 1),
            EccOutcome::Corrected { value: 0 }
        ));
        let report = ctrl.report();
        assert_eq!(report.retried_accesses, 2);
        assert_eq!(report.retry_cycles, 10);
        assert_eq!(report.blackholed_requests, 1);
        assert_eq!(report.remapped.len(), 1);
        assert_eq!(report.ecc_corrected, 1);
        assert_eq!(report.ecc_pending, 1);
    }

    #[test]
    fn attached_flight_ring_mirrors_fault_activity() {
        let flight = FlightRecorder::new();
        let mut ctrl = FaultController::new(&plan_with_everything(), 4);
        ctrl.attach_flight(flight.clone());
        ctrl.take_due(100);
        ctrl.record_retry(101, TileId(1), 6);
        ctrl.record_blackhole(102, TileId(2), 9);
        ctrl.note_flip(loc(0, 0, 7), 1);
        let _ = ctrl.ecc_read(103, loc(0, 0, 7), 1);
        let _ = ctrl.ecc_read(104, loc(0, 0, 7), 0); // clean: no event

        let events = flight.events();
        // 3 timed faults + retry + blackhole + 1 ECC correction.
        assert_eq!(events.len(), 6);
        assert!(events.iter().take(5).all(|e| e.category == "fault"));
        assert_eq!(events[3].cycle, 101);
        assert!(events[3].message.contains("degraded link of tile 1"));
        assert_eq!(events[4].core, Some(9));
        assert_eq!(events[5].category, "ecc");
        let hang = events
            .iter()
            .find(|e| e.message.contains("hung"))
            .expect("hang event");
        assert_eq!(hang.core, Some(3));
    }

    #[test]
    fn detached_controller_stays_silent() {
        let mut ctrl = FaultController::new(&plan_with_everything(), 4);
        // No flight attached: emission is a no-op, not a panic.
        ctrl.take_due(100);
        ctrl.record_retry(1, TileId(0), 2);
    }
}
