//! Deterministic pseudo-random number generation for fault schedules.
//!
//! Fault plans must be exactly reproducible from a seed — across runs,
//! machines, and build profiles — so the generator is a plain xorshift64
//! with no hidden global state and no platform-dependent behavior.

/// A xorshift64 generator (Marsaglia, 2003).
///
/// Deterministic: the same seed always yields the same sequence.
///
/// # Example
///
/// ```
/// use mempool_fault::XorShift64;
///
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. Seed 0 (the xorshift fixed point)
    /// is replaced by a fixed odd constant, so every seed is usable.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform sample in `[0, n)`; returns 0 when `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = XorShift64::new(123);
        let mut b = XorShift64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn f64_samples_stay_in_unit_interval() {
        let mut rng = XorShift64::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = XorShift64::new(9);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = XorShift64::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
