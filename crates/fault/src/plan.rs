//! Deterministic fault plans.
//!
//! A [`FaultPlan`] is the full, reproducible schedule of faults injected
//! into one simulation: which tile↔memory-die F2F links are open or
//! degraded, which SRAM banks are stuck, when transient bit flips land,
//! and when cores hang. Plans are either built by hand (tests, targeted
//! experiments) or generated from a seed and a fault rate with
//! [`FaultPlan::generate`] — the same `(seed, rate, geometry)` triple
//! always yields the identical plan.

use mempool_arch::{BankId, BankLocation, ClusterConfig, GlobalCoreId, TileId};
use mempool_obs::Json;

use crate::rng::XorShift64;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The tile's F2F via bundle to its memory die is marginal: every
    /// access to the tile's banks succeeds only after a retry costing
    /// `extra_latency` extra cycles at the issuing core.
    LinkDegraded {
        /// Tile whose vertical link is degraded.
        tile: TileId,
        /// Extra cycles per access through the retry path.
        extra_latency: u32,
    },
    /// The tile's F2F via bundle is fully open: accesses to the tile's
    /// banks fail (typed error) or vanish (black hole), depending on the
    /// plan's [`DeadLinkPolicy`].
    LinkDead {
        /// Tile whose vertical link is open.
        tile: TileId,
    },
    /// An SRAM bank is stuck (hard fault) from cycle 0 and must be
    /// remapped to a spare bank before the run starts.
    StuckBank {
        /// Tile holding the faulty bank.
        tile: TileId,
        /// The faulty bank within the tile.
        bank: BankId,
    },
    /// A transient bit flip lands in a stored word at a given cycle. The
    /// SEC-DED model corrects single-bit masks on the next read (with a
    /// scrub) and raises an uncorrectable error for multi-bit masks.
    TransientFlip {
        /// Cycle at which the flip is applied.
        cycle: u64,
        /// Word the flip lands in.
        loc: BankLocation,
        /// XOR mask applied to the stored word.
        mask: u32,
    },
    /// A core stops fetching forever at the given cycle (e.g. a latched-up
    /// core on the logic die). Detected by the forward-progress watchdog
    /// when the rest of the cluster blocks on it.
    CoreHang {
        /// Cycle at which the core hangs.
        cycle: u64,
        /// The hanging core.
        core: GlobalCoreId,
    },
}

impl FaultEvent {
    fn kind(&self) -> &'static str {
        match self {
            FaultEvent::LinkDegraded { .. } => "link_degraded",
            FaultEvent::LinkDead { .. } => "link_dead",
            FaultEvent::StuckBank { .. } => "stuck_bank",
            FaultEvent::TransientFlip { .. } => "transient_flip",
            FaultEvent::CoreHang { .. } => "core_hang",
        }
    }
}

/// What happens to an access that targets a tile behind a dead F2F link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DeadLinkPolicy {
    /// The access raises a typed simulator error (fail fast). Default.
    #[default]
    Error,
    /// The request is silently dropped — it never arrives and never
    /// responds, modeling an open via. The issuing core's transaction
    /// stays outstanding forever; only the watchdog can diagnose the
    /// resulting deadlock.
    BlackHole,
}

/// Parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic schedule.
    pub seed: u64,
    /// Per-element fault probability scale (per F2F bump for links, per
    /// bit for SRAM faults). `0` disables generation entirely.
    pub rate: f64,
    /// Cycle horizon within which timed faults (flips, hangs) land.
    pub horizon: u64,
    /// Upper bound on generated transient flips.
    pub max_transients: u32,
    /// Number of core-hang events to schedule (default 0: hangs are
    /// opt-in, since they unavoidably deadlock barrier workloads).
    pub core_hangs: u32,
}

impl FaultConfig {
    /// A configuration with the default horizon (1M cycles), transient
    /// cap (64), and no core hangs.
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            rate,
            horizon: 1_000_000,
            max_transients: 64,
            core_hangs: 0,
        }
    }

    /// Replaces the timed-fault horizon.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Replaces the core-hang count.
    pub fn with_core_hangs(mut self, hangs: u32) -> Self {
        self.core_hangs = hangs;
        self
    }
}

/// Estimated F2F bumps per tile (Table II reports hundreds of thousands
/// per 16-tile group; one tile's share of vias is on this order).
const BUMPS_PER_TILE: f64 = 20_000.0;

/// A deterministic, reproducible schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    dead_link_policy: DeadLinkPolicy,
}

impl FaultPlan {
    /// An empty plan carrying only a seed (for manual construction).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
            dead_link_policy: DeadLinkPolicy::default(),
        }
    }

    /// Generates a plan from a seed, a rate, and the cluster geometry.
    ///
    /// The generator models the defect exposure of the 3D stack:
    ///
    /// * **F2F-via opens** — each tile's vertical bundle degrades to the
    ///   retry path with probability `rate x` [`BUMPS_PER_TILE`] (capped);
    ///   fully dead links are never generated (script them explicitly);
    /// * **stuck banks** — each bank is stuck with probability
    ///   `rate x bits-per-bank` (capped), at most one per tile (one spare
    ///   bank per tile backs the remap policy);
    /// * **transient flips** — `rate x total-bits` single-bit upsets at
    ///   uniform cycles within the horizon (multi-bit upsets are far
    ///   rarer and only scriptable explicitly);
    /// * **core hangs** — only when requested via
    ///   [`FaultConfig::core_hangs`].
    ///
    /// When `rate > 0` the plan is floored at one degraded link and one
    /// stuck bank, so even tiny rates produce a measurable degraded run.
    pub fn generate(cfg: &FaultConfig, cluster: &ClusterConfig) -> Self {
        let mut plan = FaultPlan::new(cfg.seed);
        // NaN, zero, negative, and infinite rates all mean "no plan".
        if !(cfg.rate.is_finite() && cfg.rate > 0.0) {
            return plan;
        }
        let mut rng = XorShift64::new(cfg.seed);
        let tiles = cluster.num_tiles() as u64;
        let banks_per_tile = cluster.banks_per_tile() as u64;
        let bits_per_bank = cluster.bank_words() as f64 * 32.0;

        let p_link = (cfg.rate * BUMPS_PER_TILE).min(0.25);
        let mut degraded = 0u32;
        for t in 0..tiles {
            if rng.chance(p_link) {
                plan.push(FaultEvent::LinkDegraded {
                    tile: TileId(t as u32),
                    extra_latency: 4 + rng.below(28) as u32,
                });
                degraded += 1;
            }
        }
        if degraded == 0 {
            plan.push(FaultEvent::LinkDegraded {
                tile: TileId(rng.below(tiles) as u32),
                extra_latency: 4 + rng.below(28) as u32,
            });
        }

        let p_stuck = (cfg.rate * bits_per_bank).min(0.2);
        let mut stuck = 0u32;
        for t in 0..tiles {
            for b in 0..banks_per_tile {
                if rng.chance(p_stuck) {
                    plan.push(FaultEvent::StuckBank {
                        tile: TileId(t as u32),
                        bank: BankId(b as u32),
                    });
                    stuck += 1;
                    break; // one spare bank per tile
                }
            }
        }
        if stuck == 0 {
            plan.push(FaultEvent::StuckBank {
                tile: TileId(rng.below(tiles) as u32),
                bank: BankId(rng.below(banks_per_tile) as u32),
            });
        }

        let total_bits = tiles as f64 * banks_per_tile as f64 * bits_per_bank;
        let flips = ((cfg.rate * total_bits).round() as u64).clamp(1, cfg.max_transients as u64);
        for _ in 0..flips {
            plan.push(FaultEvent::TransientFlip {
                cycle: rng.below(cfg.horizon.max(1)),
                loc: BankLocation {
                    tile: TileId(rng.below(tiles) as u32),
                    bank: BankId(rng.below(banks_per_tile) as u32),
                    word: rng.below(cluster.bank_words() as u64) as u32,
                },
                mask: 1 << rng.below(32),
            });
        }

        for _ in 0..cfg.core_hangs {
            plan.push(FaultEvent::CoreHang {
                cycle: rng.below(cfg.horizon.max(1)),
                core: GlobalCoreId::new(rng.below(cluster.num_cores() as u64) as u32),
            });
        }
        plan
    }

    /// Appends an event (manual plan construction).
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Replaces the dead-link policy.
    pub fn with_dead_link_policy(mut self, policy: DeadLinkPolicy) -> Self {
        self.dead_link_policy = policy;
        self
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// What happens to accesses through a dead link.
    pub fn dead_link_policy(&self) -> DeadLinkPolicy {
        self.dead_link_policy
    }

    /// Serializes the plan (seed plus one object per event).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Int(self.seed as i64)),
            (
                "events",
                Json::Arr(self.events.iter().map(event_json).collect()),
            ),
        ])
    }
}

fn event_json(event: &FaultEvent) -> Json {
    let mut fields = vec![("kind".to_string(), Json::str(event.kind()))];
    match *event {
        FaultEvent::LinkDegraded {
            tile,
            extra_latency,
        } => {
            fields.push(("tile".to_string(), Json::Int(tile.0 as i64)));
            fields.push(("extra_latency".to_string(), Json::Int(extra_latency as i64)));
        }
        FaultEvent::LinkDead { tile } => {
            fields.push(("tile".to_string(), Json::Int(tile.0 as i64)));
        }
        FaultEvent::StuckBank { tile, bank } => {
            fields.push(("tile".to_string(), Json::Int(tile.0 as i64)));
            fields.push(("bank".to_string(), Json::Int(bank.0 as i64)));
        }
        FaultEvent::TransientFlip { cycle, loc, mask } => {
            fields.push(("cycle".to_string(), Json::Int(cycle as i64)));
            fields.push(("tile".to_string(), Json::Int(loc.tile.0 as i64)));
            fields.push(("bank".to_string(), Json::Int(loc.bank.0 as i64)));
            fields.push(("word".to_string(), Json::Int(loc.word as i64)));
            fields.push(("mask".to_string(), Json::Int(mask as i64)));
        }
        FaultEvent::CoreHang { cycle, core } => {
            fields.push(("cycle".to_string(), Json::Int(cycle as i64)));
            fields.push(("core".to_string(), Json::Int(core.0 as i64)));
        }
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> ClusterConfig {
        ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(4)
            .cores_per_tile(4)
            .banks_per_tile(16)
            .bank_words(512)
            .build()
            .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultConfig::new(42, 1e-6);
        let cluster = small_cluster();
        let a = FaultPlan::generate(&cfg, &cluster);
        let b = FaultPlan::generate(&cfg, &cluster);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let cluster = small_cluster();
        let a = FaultPlan::generate(&FaultConfig::new(1, 1e-5), &cluster);
        let b = FaultPlan::generate(&FaultConfig::new(2, 1e-5), &cluster);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let plan = FaultPlan::generate(&FaultConfig::new(42, 0.0), &small_cluster());
        assert!(plan.is_empty());
        let nan = FaultPlan::generate(&FaultConfig::new(42, f64::NAN), &small_cluster());
        assert!(nan.is_empty());
    }

    #[test]
    fn tiny_rate_is_floored_to_visible_faults() {
        let plan = FaultPlan::generate(&FaultConfig::new(42, 1e-12), &small_cluster());
        let degraded = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::LinkDegraded { .. }))
            .count();
        let stuck = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::StuckBank { .. }))
            .count();
        assert_eq!(degraded, 1, "rate floor guarantees one degraded link");
        assert_eq!(stuck, 1, "rate floor guarantees one stuck bank");
    }

    #[test]
    fn at_most_one_stuck_bank_per_tile() {
        let cluster = small_cluster();
        let plan = FaultPlan::generate(&FaultConfig::new(7, 1e-3), &cluster);
        for t in 0..cluster.num_tiles() {
            let per_tile = plan
                .events()
                .iter()
                .filter(|e| matches!(e, FaultEvent::StuckBank { tile, .. } if tile.0 == t))
                .count();
            assert!(per_tile <= 1, "tile {t} has {per_tile} stuck banks");
        }
    }

    #[test]
    fn generator_emits_no_dead_links_or_hangs_by_default() {
        let plan = FaultPlan::generate(&FaultConfig::new(3, 1e-4), &small_cluster());
        assert!(!plan
            .events()
            .iter()
            .any(|e| matches!(e, FaultEvent::LinkDead { .. } | FaultEvent::CoreHang { .. })));
        let with_hangs = FaultPlan::generate(
            &FaultConfig::new(3, 1e-4).with_core_hangs(2),
            &small_cluster(),
        );
        let hangs = with_hangs
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::CoreHang { .. }))
            .count();
        assert_eq!(hangs, 2);
    }

    #[test]
    fn generated_events_lie_within_geometry_and_horizon() {
        let cluster = small_cluster();
        let cfg = FaultConfig::new(11, 1e-5).with_horizon(5000);
        for event in FaultPlan::generate(&cfg, &cluster).events() {
            match *event {
                FaultEvent::LinkDegraded { tile, .. } | FaultEvent::LinkDead { tile } => {
                    assert!(tile.0 < cluster.num_tiles());
                }
                FaultEvent::StuckBank { tile, bank } => {
                    assert!(tile.0 < cluster.num_tiles());
                    assert!(bank.0 < cluster.banks_per_tile());
                }
                FaultEvent::TransientFlip { cycle, loc, mask } => {
                    assert!(cycle < 5000);
                    assert!(loc.tile.0 < cluster.num_tiles());
                    assert!(loc.bank.0 < cluster.banks_per_tile());
                    assert!(loc.word < cluster.bank_words());
                    assert_eq!(mask.count_ones(), 1, "generated flips are single-bit");
                }
                FaultEvent::CoreHang { cycle, core } => {
                    assert!(cycle < 5000);
                    assert!(core.0 < cluster.num_cores());
                }
            }
        }
    }

    #[test]
    fn plan_serializes_to_json() {
        let plan = FaultPlan::generate(&FaultConfig::new(42, 1e-6), &small_cluster());
        let json = plan.to_json();
        assert_eq!(json.get("seed").unwrap().as_int(), Some(42));
        assert_eq!(
            json.get("events").unwrap().as_arr().unwrap().len(),
            plan.len()
        );
    }
}
