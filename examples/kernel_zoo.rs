//! Runs every kernel of the zoo on the cycle-accurate simulator, verifies
//! each against its host-side reference, and prints the workload
//! characterization table — cycles, IPC, bank-conflict rate, remote
//! traffic, and stall rate per kernel.
//!
//! ```text
//! cargo run --release --example kernel_zoo
//! ```

use mempool_3d::mempool_arch::ClusterConfig;
use mempool_3d::mempool_kernels::axpy::Axpy;
use mempool_3d::mempool_kernels::characterize::characterize_suite;
use mempool_3d::mempool_kernels::conv2d::Conv2d;
use mempool_3d::mempool_kernels::dotprod::DotProduct;
use mempool_3d::mempool_kernels::matmul::{Blocking, ComputePhase};
use mempool_3d::mempool_kernels::transpose::Transpose;
use mempool_3d::mempool_kernels::Kernel;
use mempool_3d::mempool_sim::SimParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(256)
        .build()?;

    let axpy = Axpy::new(2048, 7);
    let dot = DotProduct::new(2048);
    let conv = Conv2d::new(34, 18, [1, 2, 1, 2, 4, 2, 1, 2, 1]).with_relu(200);
    let matmul = ComputePhase::new(32);
    let matmul_naive = ComputePhase::new(32).with_blocking(Blocking::Naive);
    let matmul_staggered = ComputePhase::new(32).with_blocking(Blocking::Staggered);
    let transpose = Transpose::new(64);
    let kernels: Vec<&dyn Kernel> = vec![
        &axpy,
        &dot,
        &conv,
        &matmul,
        &matmul_naive,
        &matmul_staggered,
        &transpose,
    ];

    let suite = characterize_suite(&kernels, &config, SimParams::default())?;
    print!("{suite}");
    println!("\nall kernels verified against their host references");
    println!("(matmul rows: 1x2-blocked, naive, and column-staggered inner loops)");
    Ok(())
}
