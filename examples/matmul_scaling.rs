//! The paper's core experiment at simulator scale: a blocked matrix
//! multiplication whose operands live off-chip, swept over the off-chip
//! bandwidth — a miniature Figure 6 measured end-to-end on the
//! cycle-accurate simulator (DMA memory phases + simulated compute
//! phases), followed by the full-size analytic sweep.
//!
//! ```text
//! cargo run --release --example matmul_scaling
//! ```

use mempool_3d::mempool::experiments::Fig6;
use mempool_3d::mempool_arch::ClusterConfig;
use mempool_3d::mempool_kernels::matmul::BlockedMatmul;
use mempool_3d::mempool_sim::{Cluster, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-core instance with enough SPM for three 32x32 tiles.
    let config = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(256)
        .build()?;

    println!("simulated 96x96 blocked matmul (t = 32), end to end:");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>8}",
        "BW [B/c]", "mem cycles", "compute", "total", "mem %"
    );
    let mm = BlockedMatmul::new(96, 32);
    for bandwidth in [4u32, 8, 16, 32, 64] {
        let mut cluster = Cluster::new(
            config.clone(),
            SimParams::default().with_offchip_bandwidth(bandwidth),
        );
        mm.setup(&mut cluster)?;
        let cycles = mm.run(&mut cluster)?;
        mm.verify(&cluster)?;
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>7.1}%",
            bandwidth,
            cycles.memory,
            cycles.compute,
            cycles.total(),
            100.0 * cycles.memory as f64 / cycles.total() as f64
        );
    }

    println!();
    println!("full-size analytic sweep (M = 326400, 256 cores):");
    println!("{}", Fig6::generate().to_text());
    Ok(())
}
