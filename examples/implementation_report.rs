//! The full implementation dossier of one design point: the memory map,
//! the area report, the memory-die floorplan, the density map, and the
//! to-scale 2D/3D comparison — everything a physical-design review of the
//! 4 MiB configuration would want on one page.
//!
//! ```text
//! cargo run --release --example implementation_report
//! ```

use mempool_3d::mempool_arch::{ClusterConfig, MemoryMap, SpmCapacity};
use mempool_3d::mempool_phys::{viz, AreaReport, Flow, GroupImplementation, TileImplementation};

fn main() {
    let capacity = SpmCapacity::MiB4;
    let config = ClusterConfig::with_capacity(capacity);

    println!("=== memory map ===");
    println!("{}", MemoryMap::new(&config));

    println!("=== tile (3D): memory die ===");
    let tile = TileImplementation::implement(capacity, Flow::ThreeD);
    println!("{}", viz::memory_die_floorplan(&tile, 48));

    let g2d = GroupImplementation::implement(capacity, Flow::TwoD);
    let g3d = GroupImplementation::implement(capacity, Flow::ThreeD);

    println!("=== group floorplans, to scale ===");
    println!("{}", viz::group_floorplan(&g2d, &g3d));

    println!("=== density map (3D) ===");
    println!("{}", viz::group_density_map(&g3d, 72));

    println!("=== area reports ===");
    println!("{}", AreaReport::from_group(&g2d));
    println!("{}", AreaReport::from_group(&g3d));

    println!("=== headline ===");
    println!(
        "3D vs 2D at {capacity}: footprint {:.0} % smaller, frequency {:+.1} %, power {:+.1} %",
        100.0 * (1.0 - g3d.footprint_um2() / g2d.footprint_um2()),
        100.0 * (g3d.frequency_ghz() / g2d.frequency_ghz() - 1.0),
        100.0 * (g3d.total_power_mw() / g2d.total_power_mw() - 1.0),
    );
}
