//! Quickstart: simulate a few cycles of MemPool and implement one design
//! point physically.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mempool_3d::mempool::DesignPoint;
use mempool_3d::mempool_arch::{ClusterConfig, SpmCapacity};
use mempool_3d::mempool_isa::Program;
use mempool_3d::mempool_phys::Flow;
use mempool_3d::mempool_sim::{Cluster, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Run a program on a (scaled-down) MemPool cluster. ------------
    // 16 Snitch-like cores over 4 tiles; every core writes its hart id
    // into the shared SPM, then core 0's word is summed by everyone.
    let config = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(256)
        .build()?;
    let program = Program::assemble(
        r#"
            csrr a0, mhartid
            slli a1, a0, 2
            li   a2, 0x400        # result array base
            add  a2, a2, a1
            sw   a0, 0(a2)        # results[hartid] = hartid
            wfi
        "#,
    )?;
    let mut cluster = Cluster::new(config, SimParams::default());
    cluster.load_program(program);
    cluster.preload_icaches();
    let cycles = cluster.run(100_000)?;
    let sum: u32 = (0..16)
        .map(|i| cluster.read_spm_word(0x400 + 4 * i).expect("in range"))
        .sum();
    println!("simulated {cycles} cycles; sum of hart ids = {sum} (expected 120)");

    // --- 2. Physically implement a design point in 2D and 3D. ------------
    for flow in [Flow::TwoD, Flow::ThreeD] {
        let point = DesignPoint::new(flow, SpmCapacity::MiB4);
        let group = point.implement_group();
        println!(
            "{}: footprint {:.2} mm², f = {:.0} MHz, power = {:.2} W, wire = {:.1} m",
            point,
            group.footprint_um2() / 1e6,
            group.frequency_ghz() * 1000.0,
            group.total_power_mw() / 1000.0,
            group.wire_length_mm() / 1000.0,
        );
    }
    Ok(())
}
