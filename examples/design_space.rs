//! Design-space exploration: implement all eight MemPool configurations
//! and print the paper's Table II plus the combined performance /
//! efficiency / EDP figures — the whole evaluation in one run.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use mempool_3d::mempool::experiments::{Evaluation, Fig7, Fig8, Fig9, Table2};
use mempool_3d::mempool::DesignPoint;

fn main() {
    let eval = Evaluation::new();

    println!("{}", Table2::from_evaluation(&eval).to_text());
    println!("{}", Fig7::from_evaluation(&eval).to_text());
    println!("{}", Fig8::from_evaluation(&eval).to_text());
    println!("{}", Fig9::from_evaluation(&eval).to_text());

    // A little decision support on top of the paper: rank the design
    // points by each criterion.
    let mut by_perf: Vec<_> = DesignPoint::all()
        .map(|p| (p, eval.performance(p, 16)))
        .collect();
    by_perf.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut by_eff: Vec<_> = DesignPoint::all()
        .map(|p| (p, eval.efficiency(p, 16)))
        .collect();
    by_eff.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut by_edp: Vec<_> = DesignPoint::all().map(|p| (p, eval.edp(p, 16))).collect();
    by_edp.sort_by(|a, b| a.1.total_cmp(&b.1));

    println!(
        "best performance:      {} ({:.3})",
        by_perf[0].0, by_perf[0].1
    );
    println!(
        "best energy efficiency: {} ({:.3})",
        by_eff[0].0, by_eff[0].1
    );
    println!(
        "best EDP:              {} ({:.3})",
        by_edp[0].0, by_edp[0].1
    );
}
