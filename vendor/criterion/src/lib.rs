//! Offline stub of `criterion`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal wall-clock benchmarking harness exposing the criterion API the
//! benches use: `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and `Bencher::iter`.
//!
//! Measurement model: each benchmark is warmed up once, then timed over
//! enough iterations to fill a short measurement window (scaled down by
//! `sample_size`), reporting mean wall-clock time per iteration and, when a
//! throughput is configured, elements per second. **Smoke mode** — enabled
//! by the `BENCH_SMOKE` environment variable or a `--smoke` argument — runs
//! every benchmark exactly once, so CI can check that benches execute
//! without paying for statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when benches should run one iteration only (CI smoke runs).
fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some() || std::env::args().any(|a| a == "--smoke")
}

/// Identifier for a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. simulated cycles) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    smoke: bool,
}

impl Bencher {
    /// Times `routine`, recording per-iteration wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        // Warm-up and calibration: run once to size the measurement loop.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let samples = self.iters_per_sample.clamp(3, 20);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples as u64;
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored knob kept for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: self.sample_size,
            smoke: smoke_mode(),
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), &bencher, self.throughput);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: self.sample_size,
            smoke: smoke_mode(),
        };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), &bencher, self.throughput);
        self
    }

    /// Ends the group (reporting happens eagerly; this mirrors the API).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = bencher.mean();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>14.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>14.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {group}/{id}: {mean:>12.3?}/iter{rate}");
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("criterion");
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_function_and_parameter() {
        assert_eq!(BenchmarkId::new("sweep", 16).to_string(), "sweep/16");
    }

    #[test]
    fn bencher_records_samples() {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 3,
            smoke: true,
        };
        bencher.iter(|| 2 + 2);
        assert_eq!(bencher.samples.len(), 1);
    }

    #[test]
    fn groups_run_benchmarks() {
        std::env::set_var("BENCH_SMOKE", "1");
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| ());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
