//! Offline stub of `serde`.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors a minimal serde stand-in. The workspace only uses serde
//! for `#[derive(Serialize, Deserialize)]` markers and trait bounds — it
//! never serializes through a data format (no serde_json / bincode). The
//! stub therefore blanket-implements both traits for every type and
//! re-exports no-op derive macros, which keeps every `derive` attribute and
//! `T: Serialize` bound in the workspace compiling unchanged.

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Sized {}
impl<T> DeserializeOwned for T {}

/// Mirror of `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};
