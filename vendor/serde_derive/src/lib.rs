//! Offline stub of `serde_derive`.
//!
//! This workspace vendors a minimal stand-in for serde so it builds with no
//! network access. Nothing in the workspace actually serializes data (there
//! is no serde_json or bincode dependency); `#[derive(Serialize)]` is used
//! purely so downstream users *could* serialize reports. The sibling `serde`
//! stub blanket-implements its marker traits for every type, so these
//! derives only need to swallow the attribute syntax and emit nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
