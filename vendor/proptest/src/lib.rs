//! Offline stub of `proptest`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! small, self-contained re-implementation of the slice of proptest it
//! uses: the [`Strategy`] trait with `prop_map`, integer-range and tuple
//! strategies, [`arbitrary::any`], `collection::vec`, weighted
//! [`prop_oneof!`], `Just`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   `Debug` and panics; it is not minimized.
//! * **No persistence.** `*.proptest-regressions` files are ignored; the
//!   RNG is seeded deterministically from the test name, so runs are
//!   reproducible without them.
//! * **Rejections** (`prop_assume!`) simply skip the case rather than
//!   generating a replacement, capped by the configured case count.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of `proptest::prelude::prop`, the crate-root alias that makes
    /// `prop::collection::vec(..)` paths work.
    pub use crate as prop;
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {:?} == {:?}: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Weighted (or unweighted) union of strategies producing the same value
/// type, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests, mirroring `proptest::proptest!`: each `fn`
/// becomes a `#[test]` that generates inputs from the given strategies and
/// runs the body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => panic!(
                        "proptest case {case} of {total} failed: {reason}\ninputs:{inputs}",
                        case = case,
                        total = config.cases,
                        reason = reason,
                        inputs = {
                            let mut rendered = String::new();
                            $(rendered.push_str(&format!(
                                "\n  {} = {:?}",
                                stringify!($arg),
                                $arg
                            ));)+
                            rendered
                        },
                    ),
                }
            }
        }
    )*};
}
