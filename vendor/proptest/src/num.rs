//! Numeric strategy helpers. Integer `Range`s implement
//! [`Strategy`](crate::strategy::Strategy) directly (see
//! [`crate::strategy`]); this module exists to mirror the real crate's
//! module layout for imports like `proptest::num`.

pub use crate::arbitrary::FullRange;
