//! Collection strategies, mirroring `proptest::collection`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with lengths drawn from a range; built by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_range() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }
}
