//! Test-runner types: deterministic RNG, per-test configuration, and the
//! case-level error type.

use std::fmt;

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion; the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "case failed: {reason}"),
            TestCaseError::Reject(reason) => write!(f, "case rejected: {reason}"),
        }
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases with all other defaults.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic 64-bit RNG (SplitMix64) seeded from the test name, so
/// every run regenerates the same cases without regression files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary string (typically the test name).
    pub fn deterministic(seed: &str) -> Self {
        // FNV-1a over the seed string gives a well-mixed starting state.
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for byte in seed.bytes() {
            state ^= byte as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the bounds used in tests and determinism is all that matters here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::deterministic("seed-a");
        let mut b = TestRng::deterministic("seed-b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
