//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree and no shrinking: a strategy simply draws a value from
/// the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type, mirroring
    /// `proptest::strategy::Strategy::boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Weighted union over strategies of one value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one weighted option"
        );
        Union {
            options,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.options {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick within total weight")
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let u = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::deterministic("map");
        let doubled = (0u32..10).prop_map(|v| v * 2).generate(&mut rng);
        assert_eq!(doubled % 2, 0);
        assert!(doubled < 20);
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::deterministic("union");
        let only_b = Union::new(vec![(0, Just('a').boxed()), (5, Just('b').boxed())]);
        for _ in 0..100 {
            assert_eq!(only_b.generate(&mut rng), 'b');
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::deterministic("tuples");
        let (a, b, c) = (0u8..4, Just(9u32), -2i32..0).generate(&mut rng);
        assert!(a < 4);
        assert_eq!(b, 9);
        assert!((-2..0).contains(&c));
    }
}
