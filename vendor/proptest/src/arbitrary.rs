//! The [`Arbitrary`] trait and [`any`], mirroring `proptest::arbitrary`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy generating arbitrary values of this type.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A`, mirroring `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-range strategy for primitive integers and `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRange<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_ints {
    ($($ty:ty => $from:expr),* $(,)?) => {$(
        impl Strategy for FullRange<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let raw = rng.next_u64();
                let convert: fn(u64) -> $ty = $from;
                convert(raw)
            }
        }

        impl Arbitrary for $ty {
            type Strategy = FullRange<$ty>;

            fn arbitrary() -> Self::Strategy {
                FullRange::default()
            }
        }
    )*};
}

arbitrary_ints! {
    u8 => |raw| raw as u8,
    u16 => |raw| raw as u16,
    u32 => |raw| raw as u32,
    u64 => |raw| raw,
    usize => |raw| raw as usize,
    i8 => |raw| raw as i8,
    i16 => |raw| raw as i16,
    i32 => |raw| raw as i32,
    i64 => |raw| raw as i64,
    isize => |raw| raw as isize,
}

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u32_covers_high_bits() {
        let mut rng = TestRng::deterministic("any-u32");
        let strategy = any::<u32>();
        assert!((0..1000).any(|_| strategy.generate(&mut rng) > u32::MAX / 2));
    }
}
