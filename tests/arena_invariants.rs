//! Arena/slab invariants of the quantum engine's hot path.
//!
//! The engine's cross-tile mailboxes, per-worker lanes, and boundary
//! scratch live in a preallocated arena owned by the cluster
//! (`Cluster::engine_arena_footprint` sums their reserved capacities).
//! These tests pin the two properties that make the hot path
//! allocation-free in steady state:
//!
//! * buffers are *reused* across ticks and quanta — the arena footprint
//!   stops growing once a homogeneous workload has warmed it up;
//! * capacity never shrinks mid-run (slots are recycled, not freed).

use mempool_arch::ClusterConfig;
use mempool_isa::instr::{AluOp, AmoOp, BranchOp, Instr, LoadOp, StoreOp};
use mempool_isa::{Program, Reg};
use mempool_obs::Obs;
use mempool_sim::{Cluster, SimError, SimParams};

/// A steady cross-tile traffic loop: every core hammers a shared word
/// (AMO), a load, and a store, `trips` times, then halts.
fn traffic_program(trips: u32) -> Program {
    Program::new(vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::new(31),
            rs1: Reg::ZERO,
            imm: trips as i32,
        },
        Instr::Amo {
            op: AmoOp::Add,
            rd: Reg::new(10),
            rs1: Reg::ZERO,
            rs2: Reg::new(31),
        },
        Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::new(11),
            rs1: Reg::ZERO,
            offset: 16,
        },
        Instr::Store {
            op: StoreOp::Sw,
            rs2: Reg::new(11),
            rs1: Reg::ZERO,
            offset: 32,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::new(31),
            rs1: Reg::new(31),
            imm: -1,
        },
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: Reg::new(31),
            rs2: Reg::ZERO,
            offset: -16,
        },
        Instr::Wfi,
    ])
}

fn bare_cluster(threads: usize, trips: u32) -> Cluster {
    let cfg = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(4)
        .bank_words(64)
        .build()
        .expect("valid config");
    let params = SimParams {
        threads,
        ..SimParams::default()
    };
    let mut cluster = Cluster::new(cfg, params);
    // Really spawn the workers even on a single-CPU host so the quantum
    // engine (and its arena) is exercised.
    cluster.force_oversubscribe();
    cluster.load_program(traffic_program(trips));
    cluster.preload_icaches();
    cluster
}

/// Drives `cluster` forward by `slice` cycles (or to completion),
/// returning whether the run finished.
fn advance(cluster: &mut Cluster, slice: u64) -> bool {
    match cluster.run(slice) {
        Ok(_) => true,
        Err(SimError::Timeout { .. }) => false,
        Err(e) => panic!("unexpected sim error: {e}"),
    }
}

#[test]
fn arena_reaches_a_steady_footprint_and_stops_growing() {
    let mut cluster = bare_cluster(4, 50_000);
    // Warmup: several full quanta (the engine batches 1024 ticks per
    // sync) of the homogeneous traffic loop.
    assert!(!advance(&mut cluster, 5_000), "workload outlives warmup");
    let warm = cluster.engine_arena_footprint();
    assert!(warm > 0, "the quantum engine must have reserved buffers");
    // Steady state: every further slice reuses the warmed-up arena.
    for slice in 0..8 {
        assert!(!advance(&mut cluster, 2_000), "workload outlives slices");
        let now = cluster.engine_arena_footprint();
        assert_eq!(
            now, warm,
            "arena footprint changed after warmup (slice {slice}): \
             buffers must be recycled, not reallocated"
        );
    }
}

#[test]
fn instrumented_arena_reaches_a_steady_footprint_too() {
    // The shard-local observation lanes (memory events, trace entries,
    // halts, forward-progress ticks) live in the same arena as the
    // mailboxes. Turning the full instrumentation stack on must not
    // reintroduce per-quantum allocations: once the homogeneous loop has
    // warmed the lanes up, the footprint is pinned.
    let mut cluster = bare_cluster(4, 50_000);
    let obs = Obs::new();
    cluster.attach_obs(&obs, "arena");
    cluster.enable_timeseries(256);
    cluster.enable_flight(64);
    cluster.enable_trace(64);
    cluster.set_watchdog(1_000_000);
    assert!(!advance(&mut cluster, 5_000), "workload outlives warmup");
    let warm = cluster.engine_arena_footprint();
    assert!(warm > 0, "instrumented lanes must have reserved buffers");
    for slice in 0..8 {
        assert!(!advance(&mut cluster, 2_000), "workload outlives slices");
        assert_eq!(
            cluster.engine_arena_footprint(),
            warm,
            "instrumented arena footprint changed after warmup (slice {slice})"
        );
    }
    cluster.detach_obs();
}

#[test]
fn arena_is_reused_across_whole_runs() {
    // Back-to-back runs on the same cluster (reload between runs) must
    // not grow the arena either: capacity belongs to the cluster, not to
    // a single `run` call.
    let mut cluster = bare_cluster(4, 2_000);
    assert!(advance(&mut cluster, 10_000_000), "first run completes");
    let after_first = cluster.engine_arena_footprint();
    assert!(after_first > 0);
    for _ in 0..3 {
        cluster.load_program(traffic_program(2_000));
        cluster.resume_all(0).expect("cores restart");
        assert!(advance(&mut cluster, 10_000_000), "rerun completes");
        assert_eq!(
            cluster.engine_arena_footprint(),
            after_first,
            "identical reruns must reuse the warmed-up arena"
        );
    }
}
