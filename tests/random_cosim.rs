//! Randomized co-simulation: arbitrary generated programs must produce
//! bit-identical architectural state on the ISA golden model and the
//! cycle-accurate simulator. This is the strongest correctness net over
//! the simulator's split-transaction machinery — scoreboarding, bank
//! arbitration, response reordering — none of which may ever change
//! *results*.

use proptest::prelude::*;

use mempool_3d::mempool_arch::{ClusterConfig, GlobalCoreId};
use mempool_3d::mempool_isa::exec::Machine;
use mempool_3d::mempool_isa::instr::{AluOp, BranchOp, Instr, LoadOp, MulOp, StoreOp, XpulpOp};
use mempool_3d::mempool_isa::{Program, Reg};
use mempool_3d::mempool_sim::{Cluster, SimParams};

/// Addressable data window shared by both models (fits any tiny SPM).
const MEM_WORDS: u32 = 64;

fn reg() -> impl Strategy<Value = Reg> {
    // Avoid ra/sp conventions entirely; any register is architecturally
    // fine, including x0.
    (0u8..32).prop_map(Reg::new)
}

/// Straight-line instructions that are always safe to execute: ALU ops on
/// arbitrary registers, plus loads/stores through x0 with bounded offsets.
fn safe_instr() -> impl Strategy<Value = Instr> {
    let word_offset = (0i32..MEM_WORDS as i32).prop_map(|w| w * 4);
    prop_oneof![
        4 => (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::Sll),
                Just(AluOp::Slt),
                Just(AluOp::Sltu),
                Just(AluOp::Xor),
                Just(AluOp::Srl),
                Just(AluOp::Sra),
                Just(AluOp::Or),
                Just(AluOp::And)
            ],
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        3 => (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        2 => (
            prop_oneof![
                Just(MulOp::Mul),
                Just(MulOp::Mulh),
                Just(MulOp::Div),
                Just(MulOp::Rem)
            ],
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Mul { op, rd, rs1, rs2 }),
        2 => (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Instr::Mac { rd, rs1, rs2 }),
        1 => (
            prop_oneof![
                Just(XpulpOp::Min),
                Just(XpulpOp::Max),
                Just(XpulpOp::Abs),
                Just(XpulpOp::Clip)
            ],
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Xpulp { op, rd, rs1, rs2 }),
        2 => (reg(), word_offset.clone()).prop_map(|(rd, offset)| Instr::Load {
            op: LoadOp::Lw,
            rd,
            rs1: Reg::ZERO,
            offset
        }),
        2 => (reg(), word_offset.clone()).prop_map(|(rs2, offset)| Instr::Store {
            op: StoreOp::Sw,
            rs2,
            rs1: Reg::ZERO,
            offset
        }),
        1 => (reg(), (0i32..MEM_WORDS as i32 * 4)).prop_map(|(rd, offset)| Instr::Load {
            op: LoadOp::Lbu,
            rd,
            rs1: Reg::ZERO,
            offset
        }),
        1 => (reg(), any::<u32>()).prop_map(|(rd, imm)| Instr::Lui {
            rd,
            imm: imm & 0xffff_f000
        }),
    ]
}

/// A program of safe straight-line code with one well-formed loop, ending
/// in `wfi`.
fn program_strategy() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(safe_instr(), 1..40),
        prop::collection::vec(safe_instr(), 1..10),
        2u32..6,
    )
        .prop_map(|(straight, loop_body, trips)| {
            let mut instrs = straight;
            // Counted loop: t6 = trips; body; t6 -= 1; bnez t6, -body.
            // Nothing in the body may clobber the counter, or the loop can
            // run forever; retarget such writes to t5.
            let keep_counter = |i: Instr| -> Instr {
                let counter = Reg::new(31);
                let safe = Reg::new(30);
                match i {
                    Instr::Op { op, rd, rs1, rs2 } if rd == counter => Instr::Op {
                        op,
                        rd: safe,
                        rs1,
                        rs2,
                    },
                    Instr::OpImm { op, rd, rs1, imm } if rd == counter => Instr::OpImm {
                        op,
                        rd: safe,
                        rs1,
                        imm,
                    },
                    Instr::Mul { op, rd, rs1, rs2 } if rd == counter => Instr::Mul {
                        op,
                        rd: safe,
                        rs1,
                        rs2,
                    },
                    Instr::Mac { rd, rs1, rs2 } if rd == counter => {
                        Instr::Mac { rd: safe, rs1, rs2 }
                    }
                    Instr::Xpulp { op, rd, rs1, rs2 } if rd == counter => Instr::Xpulp {
                        op,
                        rd: safe,
                        rs1,
                        rs2,
                    },
                    Instr::Load {
                        op,
                        rd,
                        rs1,
                        offset,
                    } if rd == counter => Instr::Load {
                        op,
                        rd: safe,
                        rs1,
                        offset,
                    },
                    Instr::Lui { rd, .. } if rd == counter => Instr::Lui { rd: safe, imm: 0 },
                    other => other,
                }
            };
            instrs.push(Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::new(31), // t6
                rs1: Reg::ZERO,
                imm: trips as i32,
            });
            let body_start = instrs.len();
            instrs.extend(loop_body.iter().copied().map(keep_counter));
            instrs.push(Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::new(31),
                rs1: Reg::new(31),
                imm: -1,
            });
            let distance = (instrs.len() - body_start) as i32 * 4;
            instrs.push(Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::new(31),
                rs2: Reg::ZERO,
                offset: -distance,
            });
            instrs.push(Instr::Wfi);
            Program::new(instrs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulator_matches_golden_model(program in program_strategy()) {
        let mut machine = Machine::new(program.clone(), MEM_WORDS as usize * 4);
        machine.run(1_000_000).expect("golden model halts");

        let cfg = ClusterConfig::builder()
            .groups(1)
            .tiles_per_group(1)
            .cores_per_tile(1)
            .banks_per_tile(4)
            .bank_words(64)
            .build()
            .expect("valid config");
        let mut cluster = Cluster::new(cfg, SimParams::default());
        cluster.load_program(program.clone());
        cluster.preload_icaches();
        cluster.run(10_000_000).expect("simulator halts");

        for r in Reg::all() {
            prop_assert_eq!(
                cluster.reg(GlobalCoreId::new(0), r),
                machine.regs().read(r),
                "register {} differs\n{}",
                r,
                program
            );
        }
        for w in 0..MEM_WORDS {
            prop_assert_eq!(
                cluster.read_spm_word(w * 4).expect("mapped"),
                machine.read_word(w * 4).expect("mapped"),
                "word {} differs\n{}",
                w,
                program
            );
        }
        // Timing sanity: the simulator can stall but never "skips" work.
        prop_assert!(cluster.stats().total_retired() >= machine.retired());
    }
}
