//! Full-scale smoke tests: the exact 256-core, 1024-bank cluster the
//! paper evaluates, running a real compute phase. Skipped under debug
//! builds (the cycle-accurate model is ~30x slower unoptimized); run with
//! `cargo test --release`.

use mempool_3d::mempool_arch::{ClusterConfig, SpmCapacity};
use mempool_3d::mempool_kernels::matmul::{Blocking, ComputePhase};
use mempool_3d::mempool_kernels::Kernel;
use mempool_3d::mempool_sim::{Cluster, SimParams};

fn release_only() -> bool {
    if cfg!(debug_assertions) {
        eprintln!("skipping full-scale test in debug build");
        return false;
    }
    true
}

#[test]
fn full_cluster_runs_a_256x256_compute_phase() {
    if !release_only() {
        return;
    }
    let cfg = ClusterConfig::with_capacity(SpmCapacity::MiB1);
    assert_eq!(cfg.num_cores(), 256);
    let mut cluster = Cluster::new(cfg, SimParams::default());
    let phase = ComputePhase::new(256);
    let cycles = phase
        .run(&mut cluster, 2_000_000_000)
        .expect("full-scale phase");
    // 256^3 MACs over 256 cores. At full scale ~75 % of the interleaved
    // accesses are *remote* (5 cycles), and the 1x2-blocked inner loop
    // cannot fully hide that — the cost lands near 7 cycles/MAC instead
    // of the ~3.3 of the tile-local-dominated small instances. (The
    // paper's hand-optimized kernels use deeper register blocking to keep
    // more loads in flight; Figure 6's *shape* is insensitive to this
    // constant, which is why the recorded model value of 3.2 is anchored
    // to the paper's near-peak utilization.)
    let macs_per_core = phase.total_macs() / 256;
    let cpm = cycles as f64 / macs_per_core as f64;
    assert!(
        (2.5..9.0).contains(&cpm),
        "full-scale cycles/MAC {cpm:.2} out of range ({cycles} cycles)"
    );
    // The full cluster keeps all four access classes busy: the interleaved
    // tiles span all 64 tiles and 4 groups.
    let stats = cluster.stats();
    let [local, group, remote] = stats.accesses_by_class();
    assert!(local > 0 && group > 0 && remote > 0);
    // Roughly 1/64 of interleaved accesses are tile-local, 15/64 group-
    // local, 48/64 remote — check the ordering at least.
    assert!(remote > group && group > local);
    let nets = stats.accesses_by_network();
    assert!(
        nets.iter().all(|&n| n > 0),
        "all four networks carry traffic: {nets:?}"
    );
}

#[test]
fn deep_blocking_hides_remote_latency_at_full_scale() {
    if !release_only() {
        return;
    }
    // The 1x4-blocked inner loop keeps five loads in flight — enough to
    // cover the 5-cycle remote latency that throttles the 1x2 loop. It
    // does not reach the 2.75-slot issue bound: with t = 256, the four
    // B-column streams walk the banks with a 256-word stride, so each
    // stream cycles through only 4 of the 1024 banks and the cores
    // serialize there (real MemPool kernels stagger their column starts
    // to break exactly this aliasing).
    let run = |blocking: Blocking| {
        let cfg = ClusterConfig::with_capacity(SpmCapacity::MiB1);
        let mut cluster = Cluster::new(cfg, SimParams::default());
        let phase = ComputePhase::new(256).with_blocking(blocking);
        let cycles = phase
            .run(&mut cluster, 2_000_000_000)
            .expect("full-scale phase");
        cycles as f64 / (phase.total_macs() / 256) as f64
    };
    let shallow = run(Blocking::OneByTwo);
    let deep = run(Blocking::OneByFour);
    assert!(
        deep < 0.9 * shallow,
        "1x4 blocking must hide latency the 1x2 loop exposes: {deep:.2} vs {shallow:.2} cycles/MAC"
    );
    assert!(
        deep < 6.0,
        "1x4 blocking at full scale should stay under 6 cycles/MAC ({deep:.2})"
    );
    // The staggered variant additionally breaks the B-column bank
    // aliasing (measured: ~100x fewer conflict cycles) and reaches the
    // issue-bound regime — landing on the very cycles/MAC constant the
    // recorded Figure 6 model uses (3.2), now validated at full scale.
    let staggered = run(Blocking::Staggered);
    assert!(
        (2.8..3.8).contains(&staggered),
        "staggered blocking should hit ~3.2 cycles/MAC at full scale ({staggered:.2})"
    );
    assert!(staggered < deep);
}

#[test]
fn full_cluster_ipc_is_high_despite_remote_latencies() {
    if !release_only() {
        return;
    }
    let cfg = ClusterConfig::with_capacity(SpmCapacity::MiB1);
    let mut cluster = Cluster::new(cfg, SimParams::default());
    let phase = ComputePhase::new(256);
    phase.run(&mut cluster, 2_000_000_000).expect("phase");
    let ipc = cluster.stats().ipc();
    // MemPool's design goal: the scoreboard and banking keep hundreds of
    // cores fed. Well over 25 % of peak (256 IPC) even with 5-cycle remote
    // loads dominating.
    assert!(
        ipc > 64.0,
        "full-cluster IPC {ipc:.1} too low — latency tolerance broken?"
    );
}
