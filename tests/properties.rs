//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use mempool_3d::mempool_arch::{AddressMap, ClusterConfig, MemoryRegion, SpmCapacity};
use mempool_3d::mempool_isa::instr::{AluOp, AmoOp, BranchOp, LoadOp, MulOp, StoreOp, XpulpOp};
use mempool_3d::mempool_isa::{decode, Instr, Program, Reg};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let r = reg_strategy;
    prop_oneof![
        (r(), any::<u32>()).prop_map(|(rd, imm)| Instr::Lui {
            rd,
            imm: imm & 0xffff_f000
        }),
        (r(), any::<u32>()).prop_map(|(rd, imm)| Instr::Auipc {
            rd,
            imm: imm & 0xffff_f000
        }),
        (r(), -(1i32 << 20)..(1i32 << 20)).prop_map(|(rd, o)| Instr::Jal { rd, offset: o & !1 }),
        (r(), r(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchOp::Beq),
                Just(BranchOp::Bne),
                Just(BranchOp::Blt),
                Just(BranchOp::Bge),
                Just(BranchOp::Bltu),
                Just(BranchOp::Bgeu)
            ],
            r(),
            r(),
            -4096i32..4096
        )
            .prop_map(|(op, rs1, rs2, o)| Instr::Branch {
                op,
                rs1,
                rs2,
                offset: o & !1
            }),
        (
            prop_oneof![
                Just(LoadOp::Lb),
                Just(LoadOp::Lh),
                Just(LoadOp::Lw),
                Just(LoadOp::Lbu),
                Just(LoadOp::Lhu)
            ],
            r(),
            r(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, offset)| Instr::Load {
                op,
                rd,
                rs1,
                offset
            }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)],
            r(),
            r(),
            -2048i32..2048
        )
            .prop_map(|(op, rs2, rs1, offset)| Instr::Store {
                op,
                rs2,
                rs1,
                offset
            }),
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Slt),
                Just(AluOp::Sltu),
                Just(AluOp::Xor),
                Just(AluOp::Or),
                Just(AluOp::And)
            ],
            r(),
            r(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra)],
            r(),
            r(),
            0i32..32
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::Sll),
                Just(AluOp::Slt),
                Just(AluOp::Sltu),
                Just(AluOp::Xor),
                Just(AluOp::Srl),
                Just(AluOp::Sra),
                Just(AluOp::Or),
                Just(AluOp::And)
            ],
            r(),
            r(),
            r()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(MulOp::Mul),
                Just(MulOp::Mulh),
                Just(MulOp::Mulhsu),
                Just(MulOp::Mulhu),
                Just(MulOp::Div),
                Just(MulOp::Divu),
                Just(MulOp::Rem),
                Just(MulOp::Remu)
            ],
            r(),
            r(),
            r()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Mul { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(AmoOp::Add),
                Just(AmoOp::Swap),
                Just(AmoOp::And),
                Just(AmoOp::Or),
                Just(AmoOp::Xor),
                Just(AmoOp::Max),
                Just(AmoOp::Min)
            ],
            r(),
            r(),
            r()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Amo { op, rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Mac { rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(XpulpOp::Min),
                Just(XpulpOp::Max),
                Just(XpulpOp::MinU),
                Just(XpulpOp::MaxU),
                Just(XpulpOp::Clip)
            ],
            r(),
            r(),
            r()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Xpulp { op, rd, rs1, rs2 }),
        (r(), r()).prop_map(|(rd, rs1)| Instr::Xpulp {
            op: XpulpOp::Abs,
            rd,
            rs1,
            rs2: Reg::ZERO,
        }),
        (r(), r(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::LwPostInc {
            rd,
            rs1,
            offset
        }),
        (r(), r(), -2048i32..2048).prop_map(|(rs2, rs1, offset)| Instr::SwPostInc {
            rs2,
            rs1,
            offset
        }),
        Just(Instr::Wfi),
        Just(Instr::Fence),
    ]
}

proptest! {
    /// Binary round trip: decode(encode(i)) == i for every instruction.
    #[test]
    fn encode_decode_round_trip(instr in instr_strategy()) {
        let word = instr.encode();
        let back = decode(word).expect("decodes");
        prop_assert_eq!(back, instr);
    }

    /// Textual round trip: the disassembly re-assembles to the same
    /// instruction (CSR reads excluded — they print the raw address).
    #[test]
    fn display_assemble_round_trip(instr in instr_strategy()) {
        let text = instr.to_string();
        let parsed: Instr = text.parse().unwrap_or_else(|e| {
            panic!("`{text}` did not re-assemble: {e}")
        });
        prop_assert_eq!(parsed, instr);
    }

    /// Address interleaving is a bijection between word addresses and bank
    /// locations.
    #[test]
    fn address_map_round_trip(word_index in 0u64..262_144) {
        let cfg = ClusterConfig::with_capacity(SpmCapacity::MiB1);
        let map = AddressMap::new(&cfg);
        let addr = (word_index * 4) as u32;
        if (addr as u64) < map.spm_end() {
            match map.locate(addr) {
                MemoryRegion::Spm(loc) => {
                    prop_assert_eq!(map.encode(loc).expect("in range"), addr);
                }
                other => prop_assert!(false, "SPM address decoded as {:?}", other),
            }
        }
    }

    /// Consecutive interleaved words never collide on a bank (for any
    /// stride not a multiple of the bank count).
    #[test]
    fn interleaving_spreads_small_strides(start in 0u64..10_000, stride in 1u64..63) {
        let cfg = ClusterConfig::with_capacity(SpmCapacity::MiB1);
        let map = AddressMap::new(&cfg);
        let banks = cfg.num_banks() as u64;
        prop_assume!(stride % banks != 0);
        let a = map.locate(map.interleaved_addr(start));
        let b = map.locate(map.interleaved_addr(start + stride));
        let (MemoryRegion::Spm(la), MemoryRegion::Spm(lb)) = (a, b) else {
            return Err(TestCaseError::fail("not SPM"));
        };
        prop_assert_ne!(la.global_bank(&cfg), lb.global_bank(&cfg));
    }

    /// The decoder never panics on arbitrary words, and whatever it
    /// accepts is stable: re-encoding and re-decoding yields the same
    /// instruction (don't-care bits are canonicalized, never semantic).
    #[test]
    fn decode_is_total_and_idempotent(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            let canonical = instr.encode();
            prop_assert_eq!(decode(canonical).expect("canonical decodes"), instr);
        }
    }

    /// Any program assembled from random arithmetic lines re-assembles
    /// from its own Display output with identical instructions.
    #[test]
    fn program_display_round_trip(seed in 0u32..1000) {
        let src = format!(
            "li a0, {}\nli a1, {}\nadd a2, a0, a1\nmul a3, a2, a0\nwfi",
            seed, seed.wrapping_mul(37)
        );
        let program = Program::assemble(&src).expect("assembles");
        let listing = program.to_string();
        let again = Program::assemble(&listing).expect("listing re-assembles");
        prop_assert_eq!(again.instrs(), program.instrs());
    }
}
