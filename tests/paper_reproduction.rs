//! End-to-end reproduction checks: the claims the paper's abstract and
//! conclusions make must hold for the regenerated tables and figures.

use mempool_3d::mempool::experiments::{Evaluation, Fig6, Fig7, Fig8, Fig9, Table1, Table2};
use mempool_3d::mempool::DesignPoint;
use mempool_3d::mempool_arch::SpmCapacity;
use mempool_3d::mempool_phys::Flow;

#[test]
fn abstract_claim_performance_gain_at_4mib() {
    // "a performance gain of 9.1 % when running a matrix multiplication on
    // the MemPool-3D design with 4 MiB ... compared to the MemPool-2D
    // counterpart" — we accept 5-13 %.
    let fig7 = Fig7::generate();
    let gain = fig7
        .bar(Flow::ThreeD, SpmCapacity::MiB4)
        .gain_over_2d
        .expect("3D bar");
    assert!(
        (1.05..1.13).contains(&gain),
        "4 MiB 3D performance gain {gain:.3}"
    );
}

#[test]
fn abstract_claim_energy_budget_of_3d_4mib() {
    // "we can implement the MemPool-3D instance with 4 MiB of L1 memory on
    // an energy budget 15 % smaller than its 2D counterpart, and even
    // 3.7 % smaller than the MemPool-2D instance with one-fourth of the
    // capacity". Energy per work is 1/efficiency.
    let eval = Evaluation::new();
    let e3d4 = 1.0 / eval.efficiency(DesignPoint::new(Flow::ThreeD, SpmCapacity::MiB4), 16);
    let e2d4 = 1.0 / eval.efficiency(DesignPoint::new(Flow::TwoD, SpmCapacity::MiB4), 16);
    let e2d1 = 1.0 / eval.efficiency(DesignPoint::baseline(), 16);
    assert!(
        e3d4 < 0.90 * e2d4,
        "3D 4 MiB energy {e3d4:.3} should undercut 2D 4 MiB {e2d4:.3} by >10 %"
    );
    assert!(
        e3d4 < e2d1,
        "3D 4 MiB energy {e3d4:.3} should undercut even the 2D 1 MiB baseline {e2d1:.3}"
    );
}

#[test]
fn conclusion_claim_16_percent_cycle_reduction_at_16b() {
    // "For a realistic bandwidth of 16 B/cycle, we observe a cycle count
    // reduction of 16 % when increasing the SPM capacity from 1 MiB to
    // 8 MiB".
    let eval = Evaluation::new();
    let reduction = 1.0 - eval.cycles_norm(SpmCapacity::MiB8, 16);
    assert!(
        (0.10..0.20).contains(&reduction),
        "cycle reduction {:.1} % (paper: 16 %)",
        reduction * 100.0
    );
}

#[test]
fn conclusion_claim_3d_frequency_advantage() {
    // "the 3D designs can still achieve an operating frequency up to
    // 9.1 % higher than their 2D counterparts" and win at every capacity.
    let eval = Evaluation::new();
    let mut best_gain = 0.0f64;
    for cap in SpmCapacity::ALL {
        let f3 = eval.frequency_norm(DesignPoint::new(Flow::ThreeD, cap));
        let f2 = eval.frequency_norm(DesignPoint::new(Flow::TwoD, cap));
        assert!(f3 > f2, "{cap}");
        best_gain = best_gain.max(f3 / f2 - 1.0);
    }
    assert!(
        (0.06..0.14).contains(&best_gain),
        "best 3D frequency gain {:.1} % (paper: up to 9.1 %)",
        best_gain * 100.0
    );
}

#[test]
fn conclusion_claim_efficiency_up_to_18_percent() {
    // "Regarding energy efficiency, the 3D designs outperform their 2D
    // counterparts by up to 18.4 %."
    let fig8 = Fig8::generate();
    let best = SpmCapacity::ALL
        .iter()
        .map(|&cap| fig8.bar(Flow::ThreeD, cap).gain_over_2d.unwrap())
        .fold(f64::MIN, f64::max);
    assert!(
        (1.12..1.30).contains(&best),
        "best 3D efficiency gain {best:.3} (paper: 1.184)"
    );
}

#[test]
fn every_experiment_renders_against_paper_values() {
    // Smoke-test the whole reporting path.
    let eval = Evaluation::new();
    let texts = [
        Table1::generate().to_text(),
        Table2::from_evaluation(&eval).to_text(),
        Fig6::generate().to_text(),
        Fig7::from_evaluation(&eval).to_text(),
        Fig8::from_evaluation(&eval).to_text(),
        Fig9::from_evaluation(&eval).to_text(),
    ];
    for text in &texts {
        assert!(text.contains("paper"), "missing paper comparison:\n{text}");
        assert!(text.len() > 100);
    }
}

#[test]
fn footprint_hierarchy_holds_at_tile_and_group_level() {
    // The paper's Table I/II relation: every 3D instance has a smaller
    // footprint than every 2D instance of at least the same capacity, and
    // the largest 3D group undercuts the smallest 2D group.
    let t = Table1::generate();
    let g2d_min = DesignPoint::baseline().implement_group().footprint_um2();
    let g3d_max = DesignPoint::new(Flow::ThreeD, SpmCapacity::MiB8)
        .implement_group()
        .footprint_um2();
    assert!(g3d_max < g2d_min, "3D 8 MiB group must undercut 2D 1 MiB");
    for row in t.rows() {
        if row.point.flow == Flow::ThreeD {
            assert!(row.footprint_norm < 1.0, "{}", row.point);
        }
    }
}
