//! Cross-validation: the timing simulator must be architecturally
//! identical to the ISA golden model. Any program run single-core on both
//! must end with the same registers and memory contents — timing changes
//! nothing architectural.

use mempool_3d::mempool_arch::ClusterConfig;
use mempool_3d::mempool_isa::exec::Machine;
use mempool_3d::mempool_isa::{Program, Reg};
use mempool_3d::mempool_sim::{Cluster, SimParams};
use mempool_arch::GlobalCoreId;

fn single_core_cluster() -> Cluster {
    let cfg = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(1)
        .cores_per_tile(1)
        .banks_per_tile(16)
        .bank_words(256)
        .build()
        .expect("valid config");
    Cluster::new(cfg, SimParams::default())
}

/// Runs `src` on both models and compares all registers plus the first
/// `check_words` words of memory.
fn cross_check(src: &str, check_words: u32) {
    let program = Program::assemble(src).expect("assembles");

    let mut machine = Machine::new(program.clone(), 16 * 1024);
    machine.run(10_000_000).expect("golden model halts");

    let mut cluster = single_core_cluster();
    cluster.load_program(program);
    cluster.preload_icaches();
    cluster.run(10_000_000).expect("simulator halts");

    for reg in Reg::all() {
        assert_eq!(
            cluster.reg(GlobalCoreId::new(0), reg),
            machine.regs().read(reg),
            "register {reg} differs\nprogram:\n{src}"
        );
    }
    for word in 0..check_words {
        let addr = word * 4;
        assert_eq!(
            cluster.read_spm_word(addr).expect("mapped"),
            machine.read_word(addr).expect("mapped"),
            "memory word {addr:#x} differs"
        );
    }
}

#[test]
fn arithmetic_program_matches() {
    cross_check(
        r#"
            li   a0, 123456
            li   a1, -789
            mul  a2, a0, a1
            div  a3, a0, a1
            rem  a4, a0, a1
            mulh a5, a0, a1
            sltu a6, a0, a1
            xor  a7, a0, a1
            wfi
        "#,
        0,
    );
}

#[test]
fn memory_program_matches() {
    cross_check(
        r#"
            li   t0, 0
            li   t1, 32
            li   t2, 0xabcd1234
        store_loop:
            sw   t2, 0(t0)
            addi t2, t2, 77
            addi t0, t0, 4
            addi t1, t1, -1
            bnez t1, store_loop
            # read some back with mixed widths
            lb   a0, 5(zero)
            lhu  a1, 10(zero)
            lw   a2, 16(zero)
            sh   a1, 100(zero)
            sb   a0, 104(zero)
            wfi
        "#,
        32,
    );
}

#[test]
fn xpulpimg_program_matches() {
    cross_check(
        r#"
            li   t0, 0
            li   t1, 16
            li   t2, 3
        fill:
            p.sw t2, 4(t0!)
            addi t2, t2, 5
            addi t1, t1, -1
            bnez t1, fill
            li   t0, 0
            li   t1, 16
            li   a0, 0
        acc:
            p.lw a1, 4(t0!)
            p.mac a0, a1, a1
            addi t1, t1, -1
            bnez t1, acc
            wfi
        "#,
        16,
    );
}

#[test]
fn amo_program_matches() {
    cross_check(
        r#"
            li   t0, 64
            li   t1, 100
            sw   t1, 0(t0)
            li   t2, 23
            amoadd.w a0, t2, (t0)
            amoswap.w a1, t2, (t0)
            amoand.w a2, t2, (t0)
            amoor.w  a3, t2, (t0)
            amoxor.w a4, t2, (t0)
            amomax.w a5, t2, (t0)
            amomin.w a6, t2, (t0)
            wfi
        "#,
        32,
    );
}

#[test]
fn control_flow_program_matches() {
    cross_check(
        r#"
            li   s0, 0
            li   s1, 0
            li   s2, 20
        outer:
            li   s3, 0
        inner:
            add  s1, s1, s3
            addi s3, s3, 1
            blt  s3, s2, inner
            jal  ra, bump
            addi s0, s0, 1
            li   s4, 3
            blt  s0, s4, outer
            j    end
        bump:
            addi s1, s1, 1000
            ret
        end:
            sw   s1, 200(zero)
            wfi
        "#,
        64,
    );
}
