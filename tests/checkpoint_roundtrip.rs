//! Checkpoint/restore bit-exactness over the whole simulator surface.
//!
//! The contract under test (see `mempool_sim::ckpt`): snapshotting a run
//! at *any* cycle and restoring it must be invisible — the resumed run
//! finishes at the same cycle with a [`ClusterStats::digest`]-equal
//! state as the unbroken run, including mid-fault-plan, mid-DMA, and
//! across host-thread counts.
//!
//! [`ClusterStats::digest`]: mempool_3d::mempool_sim::ClusterStats::digest

use proptest::prelude::*;

use mempool_3d::mempool_arch::ClusterConfig;
use mempool_3d::mempool_isa::instr::{AluOp, AmoOp, BranchOp, Instr, LoadOp, StoreOp};
use mempool_3d::mempool_isa::{Program, Reg};
use mempool_3d::mempool_kernels::matmul::ComputePhase;
use mempool_3d::mempool_kernels::Kernel;
use mempool_3d::mempool_sim::{Cluster, SimError, SimParams};
use mempool_fault::{FaultConfig, FaultPlan};

/// Cycle budget generous enough for every workload here.
const BUDGET: u64 = 10_000_000;

fn small_config() -> ClusterConfig {
    ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(4)
        .bank_words(64)
        .build()
        .expect("valid config")
}

/// A multi-core program with enough memory traffic (loads, stores, AMOs,
/// a counted loop) to keep transactions in flight for hundreds of cycles.
fn traffic_program(trips: u32) -> Program {
    Program::new(vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::new(31),
            rs1: Reg::ZERO,
            imm: trips as i32,
        },
        // Loop body: hammer a shared word plus a private one.
        Instr::Amo {
            op: AmoOp::Add,
            rd: Reg::new(10),
            rs1: Reg::ZERO,
            rs2: Reg::new(31),
        },
        Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::new(11),
            rs1: Reg::ZERO,
            offset: 16,
        },
        Instr::Store {
            op: StoreOp::Sw,
            rs2: Reg::new(11),
            rs1: Reg::ZERO,
            offset: 32,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::new(31),
            rs1: Reg::new(31),
            imm: -1,
        },
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: Reg::new(31),
            rs2: Reg::ZERO,
            offset: -16,
        },
        Instr::Wfi,
    ])
}

fn fresh(threads: usize, trips: u32) -> Cluster {
    let params = SimParams {
        threads,
        ..SimParams::default()
    };
    let mut cluster = Cluster::new(small_config(), params);
    // These clusters are bare, so multi-thread runs dispatch to the
    // quantum engine; really spawn the workers even on single-CPU hosts
    // (the engine otherwise clamps to the host's parallelism).
    cluster.force_oversubscribe();
    cluster.load_program(traffic_program(trips));
    cluster.preload_icaches();
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_at_an_arbitrary_cycle_is_invisible(
        trips in 2u32..40,
        snap in 1u64..400,
    ) {
        let mut unbroken = fresh(1, trips);
        let end = unbroken.run(BUDGET).expect("unbroken run finishes");

        let mut broken = fresh(1, trips);
        match broken.run(snap) {
            Ok(_) | Err(SimError::Timeout { .. }) => {}
            Err(e) => panic!("unexpected sim error: {e}"),
        }
        // Round trip through the *textual* format: the snapshot written
        // to disk, not just the in-memory document, must be total.
        let doc = mempool_obs::Json::parse(&broken.checkpoint().to_pretty())
            .expect("checkpoint text parses");
        let mut resumed = Cluster::restore(&doc).expect("restore");
        if !resumed.quiescent() {
            resumed.run(BUDGET).expect("resumed run finishes");
        }
        prop_assert_eq!(resumed.cycle(), end, "same final cycle");
        prop_assert_eq!(
            resumed.stats().digest(),
            unbroken.stats().digest(),
            "bit-identical stats"
        );
    }

    #[test]
    fn cross_thread_resume_is_bit_exact(
        trips in 2u32..24,
        snap in 1u64..300,
        seq_to_par in any::<bool>(),
    ) {
        let (before, after) = if seq_to_par { (1, 8) } else { (8, 1) };
        let mut unbroken = fresh(1, trips);
        let end = unbroken.run(BUDGET).expect("unbroken run finishes");

        let mut broken = fresh(before, trips);
        match broken.run(snap) {
            Ok(_) | Err(SimError::Timeout { .. }) => {}
            Err(e) => panic!("unexpected sim error: {e}"),
        }
        let mut resumed = Cluster::restore(&broken.checkpoint()).expect("restore");
        resumed.set_threads(after);
        resumed.force_oversubscribe();
        if !resumed.quiescent() {
            resumed.run(BUDGET).expect("resumed run finishes");
        }
        prop_assert_eq!(resumed.cycle(), end);
        prop_assert_eq!(resumed.stats().digest(), unbroken.stats().digest());
    }

    /// A deadline that lands *inside* a quantum (the engine batches 1024
    /// ticks per sync by default) must stop the cluster on the exact
    /// cycle with committed state: snapshotting there and resuming at a
    /// different worker count stays bit-exact, with cross-tile requests,
    /// contended AMOs, and off-chip responses in flight at the boundary.
    #[test]
    fn mid_quantum_snapshot_resumes_bit_exact(
        trips in 8u32..40,
        snap in 1u64..900,
        workers in 2usize..5,
    ) {
        let mut unbroken = fresh(1, trips);
        let end = unbroken.run(BUDGET).expect("unbroken run finishes");

        let mut broken = fresh(workers, trips);
        match broken.run(snap) {
            Ok(_) | Err(SimError::Timeout { .. }) => {}
            Err(e) => panic!("unexpected sim error: {e}"),
        }
        let doc = mempool_obs::Json::parse(&broken.checkpoint().to_pretty())
            .expect("checkpoint text parses");
        let mut resumed = Cluster::restore(&doc).expect("restore");
        resumed.set_threads(workers + 1);
        resumed.force_oversubscribe();
        if !resumed.quiescent() {
            resumed.run(BUDGET).expect("resumed run finishes");
        }
        prop_assert_eq!(resumed.cycle(), end, "same final cycle");
        prop_assert_eq!(resumed.stats().digest(), unbroken.stats().digest());
    }
}

/// Builds the resilience workload cluster with a fault plan injected and
/// the prologue run — the state a degraded experiment is in at cycle 0.
fn degraded_cluster(seed: u64) -> (Cluster, ComputePhase) {
    let cfg = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(512)
        .build()
        .expect("valid config");
    let mut cluster = Cluster::new(cfg, SimParams::default());
    let phase = ComputePhase::new(16);
    let fault_cfg = FaultConfig::new(seed, 1e-6).with_horizon(40_000);
    let plan = FaultPlan::generate(&fault_cfg, cluster.config());
    cluster.inject_faults(&plan).expect("plan injects");
    cluster.set_watchdog(2_000_000);
    let program = phase.program(&cluster).expect("codegen");
    phase.setup(&mut cluster).expect("setup");
    cluster.load_program(program);
    cluster.preload_icaches();
    (cluster, phase)
}

#[test]
fn mid_fault_plan_resume_is_bit_exact() {
    let (mut unbroken, phase) = degraded_cluster(42);
    let end = unbroken.run(BUDGET).expect("unbroken run finishes");
    phase.verify(&unbroken).expect("results stay correct");
    let report = unbroken.fault_report().expect("plan injected");

    // Snapshot mid-run — transient timed faults still pending, retries
    // and ECC state in flight — and finish from the restored state.
    let (mut broken, _) = degraded_cluster(42);
    match broken.run(end / 2) {
        Err(SimError::Timeout { .. }) => {}
        other => panic!("expected a mid-run timeout, got {other:?}"),
    }
    let mut resumed = Cluster::restore(&broken.checkpoint()).expect("restore");
    assert_eq!(resumed.run(BUDGET).expect("resumed run finishes"), end);
    phase.verify(&resumed).expect("results stay correct");
    assert_eq!(resumed.stats().digest(), unbroken.stats().digest());
    assert_eq!(
        resumed.fault_report().expect("restored controller reports"),
        report,
        "retry/correction/remap accounting survives the snapshot"
    );
}

#[test]
fn mid_dma_snapshot_preserves_the_offchip_port_state() {
    let run = |snapshot: bool| -> (u64, u64) {
        let mut cluster = fresh(1, 4);
        // Seed the SPM, then book two async transfers back-to-back: the
        // second queues behind the first on the off-chip port.
        for w in 0..16u32 {
            cluster.write_spm_word(w * 4, w ^ 0x5a5a).expect("mapped");
        }
        let first = cluster
            .dma_tile_async(0, 64, 0, 8, 64, false)
            .expect("dma starts");
        let second = cluster
            .dma_tile_async(1024, 64, 0, 8, 64, false)
            .expect("dma starts");
        assert!(second > first, "port serializes transfers");
        let mut cluster = if snapshot {
            // Snapshot while the port is still booked out.
            Cluster::restore(&cluster.checkpoint()).expect("restore")
        } else {
            cluster
        };
        cluster.advance_to(second);
        let end = cluster.run(BUDGET).expect("run finishes");
        (end, cluster.stats().digest())
    };
    let (end_a, digest_a) = run(false);
    let (end_b, digest_b) = run(true);
    assert_eq!(end_a, end_b, "same final cycle");
    assert_eq!(digest_a, digest_b, "busy off-chip port survives restore");
}
