//! Cross-engine equivalence: the phased-tick parallel engine must be
//! **bit-identical** to the sequential engine at every thread count.
//!
//! `SimParams::threads` is a pure host-side knob — it chooses how many
//! host threads advance tile-local state between the deterministic
//! commit barriers, and nothing else. These tests pin that contract:
//! every kernel in the characterization zoo, a seed-42 fault-injected
//! degraded run, the sampled time series, the cycle-attribution report,
//! the pinned benchmark summary, and even the exact `SimError` raised by
//! a watchdog-detected deadlock must not change when the engine goes
//! parallel.

use mempool_arch::{ClusterConfig, TileId};
use mempool_fault::{DeadLinkPolicy, FaultConfig, FaultEvent, FaultPlan};
use mempool_isa::Program;
use mempool_kernels::axpy::Axpy;
use mempool_kernels::dotprod::DotProduct;
use mempool_kernels::matmul::ComputePhase;
use mempool_kernels::transpose::Transpose;
use mempool_kernels::Kernel;
use mempool_obs::{chrome_trace_with_counters, Json, Obs};
use mempool_sim::{Cluster, ClusterStats, SimError, SimParams};

/// Thread counts exercised against the sequential reference. Eight
/// threads oversubscribes the four-tile clusters below (the engine clamps
/// to one thread per tile), which is itself worth covering.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The pinned fault seed, matching the committed baseline scenario.
const FAULT_SEED: u64 = 42;

fn zoo_config() -> ClusterConfig {
    ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(256)
        .build()
        .unwrap()
}

fn params(threads: usize) -> SimParams {
    SimParams {
        threads,
        ..SimParams::default()
    }
}

/// Everything one run observes, in directly comparable form. The string
/// fields are the *serialized artifacts* (what `repro --artifacts` writes
/// as timeseries.json, trace.json, and the flight events), so equality
/// here is the byte-identity the instrumented CI diff relies on.
#[derive(Debug, PartialEq)]
struct Observed {
    cycles: u64,
    stats: ClusterStats,
    digest: u64,
    attribution: String,
    timeseries: String,
    trace: String,
    flight: String,
    fault_report: Option<String>,
}

/// Runs `kernel` once at the given thread count, with optional fault
/// injection, and captures every comparable output — the full
/// observability stack is on (spans, metrics, time series, flight ring,
/// instruction trace), so clean multi-thread legs exercise the quantum
/// engine's shard-local observation lanes.
fn observe(
    kernel: &dyn Kernel,
    threads: usize,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
) -> Observed {
    let cfg = zoo_config();
    let obs = Obs::new();
    let mut cluster = Cluster::new(cfg.clone(), params(threads));
    cluster.attach_obs(&obs, "equivalence");
    cluster.enable_timeseries(256);
    cluster.enable_flight(128);
    cluster.enable_trace(128);
    if let Some(plan) = plan {
        cluster.inject_faults(plan).unwrap();
    }
    if let Some(threshold) = watchdog {
        cluster.set_watchdog(threshold);
    }
    let cycles = kernel
        .run(&mut cluster, 10_000_000)
        .unwrap_or_else(|e| panic!("{} at {threads} threads: {e}", kernel.name()));
    let stats = cluster.stats();
    let attribution = stats
        .attribution(cfg.cores_per_tile(), cfg.banks_per_tile())
        .to_json()
        .to_pretty();
    let fault_report = cluster.fault_report().map(|r| r.to_json().to_pretty());
    // Close still-open spans so the exported trace is balanced.
    cluster.detach_obs();
    Observed {
        cycles,
        digest: stats.digest(),
        attribution,
        timeseries: obs.series.to_json().to_pretty(),
        trace: chrome_trace_with_counters(&obs.spans, Some(&obs.series)).to_pretty(),
        flight: obs.flight.to_json().to_pretty(),
        fault_report,
        stats,
    }
}

fn zoo() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Axpy::new(1024, 3)),
        Box::new(DotProduct::new(1024)),
        Box::new(ComputePhase::new(32)),
        Box::new(Transpose::new(64)),
    ]
}

#[test]
fn every_zoo_kernel_is_bit_identical_at_every_thread_count() {
    for kernel in zoo() {
        let reference = observe(kernel.as_ref(), 1, None, None);
        assert!(reference.cycles > 0, "{}", kernel.name());
        for threads in THREAD_COUNTS {
            let candidate = observe(kernel.as_ref(), threads, None, None);
            assert_eq!(
                reference,
                candidate,
                "{} diverged at {threads} threads",
                kernel.name()
            );
        }
    }
}

#[test]
fn seed42_fault_injected_run_is_bit_identical_at_every_thread_count() {
    // A rate high enough that retries, ECC corrections, and link
    // degradation all actually fire on this small cluster.
    let fault_cfg = FaultConfig::new(FAULT_SEED, 1e-4).with_horizon(50_000);
    let plan = FaultPlan::generate(&fault_cfg, &zoo_config());
    let kernel = ComputePhase::new(32);
    let reference = observe(&kernel, 1, Some(&plan), Some(2_000_000));
    let report = reference
        .fault_report
        .as_deref()
        .expect("a fault-injected run carries a report");
    assert!(
        report.contains("\"injected\""),
        "report should summarize injections: {report}"
    );
    for threads in THREAD_COUNTS {
        let candidate = observe(&kernel, threads, Some(&plan), Some(2_000_000));
        assert_eq!(
            reference, candidate,
            "degraded run diverged at {threads} threads"
        );
    }
}

#[test]
fn watchdog_deadlock_raises_the_identical_error_at_every_thread_count() {
    // Core 0 waits forever on a load swallowed by a black-holing dead
    // link; the watchdog must fire on the same cycle with the same
    // per-core diagnostics regardless of engine.
    let run_once = |threads: usize| -> SimError {
        let cfg = zoo_config();
        let remote = {
            let probe = Cluster::new(cfg.clone(), params(1));
            probe.storage().map().seq_addr(TileId(1), 0)
        };
        let mut cluster = Cluster::new(cfg, params(threads));
        let mut plan = FaultPlan::new(5).with_dead_link_policy(DeadLinkPolicy::BlackHole);
        plan.push(FaultEvent::LinkDead { tile: TileId(1) });
        cluster.inject_faults(&plan).unwrap();
        cluster.set_watchdog(64);
        cluster.load_program(
            Program::assemble(&format!(
                r#"
                    csrr t1, mhartid
                    bnez t1, done
                    li   t0, {remote}
                    lw   a0, 0(t0)
                    add  a1, a0, a0
                done:
                    wfi
                "#
            ))
            .unwrap(),
        );
        cluster.preload_icaches();
        cluster.run(100_000).unwrap_err()
    };
    let reference = run_once(1);
    let SimError::Deadlock { diagnostics, .. } = &reference else {
        panic!("expected a deadlock, got {reference}");
    };
    assert_eq!(diagnostics.len(), 16);
    assert_eq!(diagnostics[0].condition(), "waiting-on-memory");
    for threads in THREAD_COUNTS {
        assert_eq!(
            reference,
            run_once(threads),
            "deadlock error diverged at {threads} threads"
        );
    }
}

/// Removes the `perf` section (live wall-clock throughput, never
/// identical between two runs) from a benchmark summary.
fn strip_perf(doc: &Json) -> Json {
    match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(key, _)| key != "perf")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

#[test]
fn bench_summary_is_bit_identical_across_engines() {
    // `bench_summary()` builds its clusters through `SimParams::default`,
    // which reads the process-wide default thread count — the same path
    // `repro --threads N` uses. Every other test in this binary sets
    // `SimParams::threads` explicitly, so flipping the global here is
    // safe even under the parallel test runner.
    mempool_sim::set_default_threads(1);
    let sequential = strip_perf(&mempool_bench::bench_summary()).to_pretty();
    mempool_sim::set_default_threads(4);
    let parallel = strip_perf(&mempool_bench::bench_summary()).to_pretty();
    mempool_sim::set_default_threads(1);
    assert_eq!(
        sequential, parallel,
        "the pinned summary must not depend on the engine"
    );
}

// ---------------------------------------------------------------------
// Quantum-engine equivalence: *bare* runs (no obs/faults/trace) dispatch
// to the arena-backed quantum engine whenever more than one effective
// worker is available. Its contract is the same as the phased-tick
// engine's, proven against the sequential step-loop reference: same
// cycles, same stats digest, same errors — at any worker count, through
// timeouts, and with cross-tile, contended-AMO, and off-chip traffic in
// flight at quantum boundaries. `force_oversubscribe` makes the runs
// spawn real worker threads even on single-CPU CI hosts (the engine
// otherwise clamps workers to the host's parallelism).
// ---------------------------------------------------------------------

use mempool_isa::instr::{AluOp, AmoOp, BranchOp, Instr, LoadOp, StoreOp, CSR_MHARTID};
use mempool_isa::Reg;

/// Worker counts for the quantum runs: an even tile split, an uneven
/// split, and one worker per tile.
const QUANTUM_WORKERS: [usize; 3] = [2, 3, 8];

fn quantum_config() -> ClusterConfig {
    ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(16)
        .cores_per_tile(2)
        .banks_per_tile(4)
        .bank_words(64)
        .build()
        .unwrap()
}

/// Every core: contended AMO on a shared word, a hart-spread load/store
/// pair striding across tiles through the interleaved region, optionally
/// an off-chip load+store, a counted loop, then halt.
fn quantum_traffic(trips: u32, external: bool) -> Program {
    let mut body = vec![
        // r1 = hartid * 4 (word stride), r2 = external base + r1.
        Instr::Csrrs {
            rd: Reg::new(1),
            csr: CSR_MHARTID,
            rs1: Reg::ZERO,
        },
        Instr::OpImm {
            op: AluOp::Sll,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 2,
        },
        Instr::Lui {
            rd: Reg::new(2),
            imm: 0x8000_0000,
        },
        Instr::Op {
            op: AluOp::Add,
            rd: Reg::new(2),
            rs1: Reg::new(2),
            rs2: Reg::new(1),
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::new(31),
            rs1: Reg::ZERO,
            imm: trips as i32,
        },
        // Loop body.
        Instr::Amo {
            op: AmoOp::Add,
            rd: Reg::new(10),
            rs1: Reg::ZERO,
            rs2: Reg::new(31),
        },
        Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::new(11),
            rs1: Reg::new(1),
            offset: 64,
        },
        Instr::Store {
            op: StoreOp::Sw,
            rs2: Reg::new(11),
            rs1: Reg::new(1),
            offset: 256,
        },
    ];
    if external {
        body.push(Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::new(12),
            rs1: Reg::new(2),
            offset: 0,
        });
        body.push(Instr::Store {
            op: StoreOp::Sw,
            rs2: Reg::new(31),
            rs1: Reg::new(2),
            offset: 4,
        });
    }
    body.extend([
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::new(31),
            rs1: Reg::new(31),
            imm: -1,
        },
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: Reg::new(31),
            rs2: Reg::ZERO,
            offset: if external { -24 } else { -16 },
        },
        Instr::Wfi,
    ]);
    Program::new(body)
}

/// A bare cluster on `threads` workers (really spawned, even on a
/// single-CPU host).
fn bare(threads: usize, program: &Program) -> Cluster {
    let mut cluster = Cluster::new(quantum_config(), params(threads));
    cluster.force_oversubscribe();
    cluster.load_program(program.clone());
    cluster.preload_icaches();
    cluster
}

#[test]
fn quantum_engine_matches_the_step_loop_bit_exactly() {
    for external in [false, true] {
        let program = quantum_traffic(40, external);
        // Reference: the sequential step loop (threads = 1 dispatches to
        // it directly).
        let mut reference = bare(1, &program);
        let ref_cycles = reference.run(1_000_000).expect("reference completes");
        let ref_digest = reference.stats().digest();
        for workers in QUANTUM_WORKERS {
            let mut cluster = bare(workers, &program);
            let cycles = cluster.run(1_000_000).expect("quantum run completes");
            assert_eq!(
                cycles, ref_cycles,
                "cycle count must not depend on workers ({workers}, external {external})"
            );
            assert_eq!(
                cluster.stats().digest(),
                ref_digest,
                "stats digest must not depend on workers ({workers}, external {external})"
            );
            assert_eq!(cluster.stats(), reference.stats());
        }
    }
}

#[test]
fn quantum_timeout_lands_on_the_exact_cycle_and_resumes_bit_exactly() {
    let program = quantum_traffic(80, true);
    let mut ref_done = bare(1, &program);
    let final_cycles = ref_done.run(1_000_000).expect("completes");
    let final_digest = ref_done.stats().digest();
    // Budgets chosen to land inside a quantum, not on its boundary.
    for budget in [1, 777] {
        let mut reference = bare(1, &program);
        let ref_err = reference.run(budget).expect_err("budget is too small");
        assert_eq!(ref_err, SimError::Timeout { cycles: budget });
        for workers in QUANTUM_WORKERS {
            let mut cluster = bare(workers, &program);
            let err = cluster.run(budget).expect_err("budget is too small");
            assert_eq!(
                err, ref_err,
                "timeout error must match at {workers} workers"
            );
            assert_eq!(
                cluster.stats().digest(),
                reference.stats().digest(),
                "mid-run state at the deadline must match at {workers} workers"
            );
            // Finishing from the timed-out state stays bit-exact.
            let resumed = cluster.run(1_000_000).expect("resumes to completion");
            assert_eq!(resumed, final_cycles);
            assert_eq!(cluster.stats().digest(), final_digest);
        }
    }
}

#[test]
fn quantum_errors_match_the_step_loop() {
    // No Wfi: every core runs off the end of the program, and the engine
    // must report the same PcOutOfRange error at the same cycle with the
    // same stats as the sequential loop.
    let program = Program::new(vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::new(5),
            rs1: Reg::ZERO,
            imm: 7,
        },
        Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::new(6),
            rs1: Reg::ZERO,
            offset: 128,
        },
    ]);
    let mut reference = bare(1, &program);
    let ref_err = reference.run(1_000_000).expect_err("runs off the program");
    let ref_cycle = reference.cycle();
    for workers in QUANTUM_WORKERS {
        let mut cluster = bare(workers, &program);
        let err = cluster.run(1_000_000).expect_err("runs off the program");
        assert_eq!(err, ref_err, "error must match at {workers} workers");
        assert_eq!(
            cluster.cycle(),
            ref_cycle,
            "the clock must stop on the erroring cycle at {workers} workers"
        );
        assert_eq!(cluster.stats().digest(), reference.stats().digest());
    }
}

#[test]
fn quantum_reports_no_program_like_the_step_loop() {
    let mut sequential = Cluster::new(quantum_config(), params(1));
    let mut quantum = Cluster::new(quantum_config(), params(4));
    quantum.force_oversubscribe();
    assert_eq!(
        sequential.run(1000).expect_err("no program loaded"),
        quantum.run(1000).expect_err("no program loaded"),
    );
}

// ---------------------------------------------------------------------
// Instrumented quantum runs: observability no longer forces the step
// engine. A fully instrumented cluster (spans, metrics, time series,
// flight ring, instruction trace, watchdog) still dispatches to the
// quantum engine, and every serialized artifact is byte-identical to the
// sequential reference — the shard-local observation lanes merge in
// source-tile order at quantum stops.
// ---------------------------------------------------------------------

/// One fully instrumented run on the quantum traffic program, returning
/// the serialized artifacts.
fn observe_instrumented(threads: usize, program: &Program) -> Observed {
    let obs = Obs::new();
    let mut cluster = Cluster::new(quantum_config(), params(threads));
    cluster.force_oversubscribe();
    cluster.attach_obs(&obs, "instrumented");
    cluster.enable_timeseries(64);
    cluster.enable_flight(128);
    cluster.enable_trace(128);
    cluster.set_watchdog(100_000);
    let selection = cluster.engine_selection();
    if threads > 1 {
        assert_eq!(
            selection.engine, "quantum",
            "instrumentation must not force the step engine: {}",
            selection.reason
        );
    } else {
        assert_eq!(selection.engine, "step");
    }
    cluster.load_program(program.clone());
    cluster.preload_icaches();
    let cycles = cluster.run(1_000_000).expect("instrumented run completes");
    let stats = cluster.stats();
    let attribution = stats.attribution(2, 4).to_json().to_pretty();
    cluster.detach_obs();
    Observed {
        cycles,
        digest: stats.digest(),
        attribution,
        timeseries: obs.series.to_json().to_pretty(),
        trace: chrome_trace_with_counters(&obs.spans, Some(&obs.series)).to_pretty(),
        flight: obs.flight.to_json().to_pretty(),
        fault_report: None,
        stats,
    }
}

#[test]
fn instrumented_quantum_runs_produce_byte_identical_artifacts() {
    for external in [false, true] {
        let program = quantum_traffic(40, external);
        let reference = observe_instrumented(1, &program);
        assert!(
            !reference.flight.contains("\"events\": []"),
            "served requests must land in the flight ring"
        );
        assert!(
            reference.timeseries.contains("series"),
            "epoch sampling must produce tracks"
        );
        for workers in QUANTUM_WORKERS {
            let candidate = observe_instrumented(workers, &program);
            assert_eq!(
                reference, candidate,
                "instrumented artifacts diverged at {workers} workers (external {external})"
            );
        }
    }
}

#[test]
fn fault_plan_runs_record_the_step_fallback_with_its_reason() {
    // Fault machinery stays on the per-tick step engine; since PR 10 the
    // downgrade is recorded, not silent.
    let fault_cfg = FaultConfig::new(FAULT_SEED, 1e-4).with_horizon(50_000);
    let plan = FaultPlan::generate(&fault_cfg, &zoo_config());
    let mut cluster = Cluster::new(zoo_config(), params(4));
    cluster.force_oversubscribe();
    cluster.inject_faults(&plan).unwrap();
    let selection = cluster.engine_selection();
    assert_eq!(selection.engine, "step");
    assert!(
        selection.reason.contains("fault plan"),
        "the reason must name the fault plan: {}",
        selection.reason
    );
    let planned = mempool_sim::planned_engine(4, true);
    assert_eq!(planned.engine, "step");
    assert_eq!(mempool_sim::planned_engine(1, false).engine, "step");
}

#[test]
fn watchdog_deadlock_on_the_quantum_engine_is_bit_identical() {
    // Core 0 issues an off-chip load whose response takes far longer than
    // the watchdog threshold, then stalls using the result: a genuine
    // forward-progress deadlock on the quantum path (no fault plan, so
    // the run is quantum-eligible). The flight recorder must trip
    // mid-quantum with the identical watchdog event, error, and stop
    // cycle at every worker count.
    let program = Program::new(vec![
        Instr::Csrrs {
            rd: Reg::new(1),
            csr: CSR_MHARTID,
            rs1: Reg::ZERO,
        },
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: Reg::new(1),
            rs2: Reg::ZERO,
            offset: 16,
        },
        Instr::Lui {
            rd: Reg::new(2),
            imm: 0x8000_0000,
        },
        Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::new(3),
            rs1: Reg::new(2),
            offset: 0,
        },
        Instr::Op {
            op: AluOp::Add,
            rd: Reg::new(4),
            rs1: Reg::new(3),
            rs2: Reg::new(3),
        },
        Instr::Wfi,
    ]);
    let run_once = |threads: usize| -> (SimError, u64, String) {
        let obs = Obs::new();
        let slow_offchip = SimParams {
            offchip_latency: 10_000,
            ..params(threads)
        };
        let mut cluster = Cluster::new(quantum_config(), slow_offchip);
        cluster.force_oversubscribe();
        cluster.attach_obs(&obs, "deadlock");
        cluster.enable_timeseries(64);
        cluster.enable_flight(64);
        cluster.enable_trace(64);
        cluster.set_watchdog(100);
        assert_eq!(
            cluster.engine_selection().engine,
            if threads > 1 { "quantum" } else { "step" }
        );
        cluster.load_program(program.clone());
        cluster.preload_icaches();
        let err = cluster.run(100_000).expect_err("the watchdog must fire");
        let cycle = cluster.cycle();
        cluster.detach_obs();
        (err, cycle, obs.flight.to_json().to_pretty())
    };
    let (ref_err, ref_cycle, ref_flight) = run_once(1);
    assert!(
        matches!(ref_err, SimError::Deadlock { .. }),
        "expected a deadlock, got {ref_err}"
    );
    assert!(
        ref_flight.contains("watchdog"),
        "the flight ring must carry the watchdog event: {ref_flight}"
    );
    for workers in QUANTUM_WORKERS {
        let (err, cycle, flight) = run_once(workers);
        assert_eq!(err, ref_err, "deadlock diverged at {workers} workers");
        assert_eq!(cycle, ref_cycle, "stop cycle diverged at {workers} workers");
        assert_eq!(
            flight, ref_flight,
            "flight ring diverged at {workers} workers"
        );
    }
}
