//! Cross-engine equivalence: the phased-tick parallel engine must be
//! **bit-identical** to the sequential engine at every thread count.
//!
//! `SimParams::threads` is a pure host-side knob — it chooses how many
//! host threads advance tile-local state between the deterministic
//! commit barriers, and nothing else. These tests pin that contract:
//! every kernel in the characterization zoo, a seed-42 fault-injected
//! degraded run, the sampled time series, the cycle-attribution report,
//! the pinned benchmark summary, and even the exact `SimError` raised by
//! a watchdog-detected deadlock must not change when the engine goes
//! parallel.

use mempool_arch::{ClusterConfig, TileId};
use mempool_fault::{DeadLinkPolicy, FaultConfig, FaultEvent, FaultPlan};
use mempool_isa::Program;
use mempool_kernels::axpy::Axpy;
use mempool_kernels::dotprod::DotProduct;
use mempool_kernels::matmul::ComputePhase;
use mempool_kernels::transpose::Transpose;
use mempool_kernels::Kernel;
use mempool_obs::{Json, Obs};
use mempool_sim::{Cluster, ClusterStats, SimError, SimParams};

/// Thread counts exercised against the sequential reference. Eight
/// threads oversubscribes the four-tile clusters below (the engine clamps
/// to one thread per tile), which is itself worth covering.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The pinned fault seed, matching the committed baseline scenario.
const FAULT_SEED: u64 = 42;

fn zoo_config() -> ClusterConfig {
    ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(256)
        .build()
        .unwrap()
}

fn params(threads: usize) -> SimParams {
    SimParams {
        threads,
        ..SimParams::default()
    }
}

/// Everything one run observes, in directly comparable form.
#[derive(Debug, PartialEq)]
struct Observed {
    cycles: u64,
    stats: ClusterStats,
    digest: u64,
    attribution: String,
    timeseries: String,
    fault_report: Option<String>,
}

/// Runs `kernel` once at the given thread count, with optional fault
/// injection, and captures every comparable output.
fn observe(
    kernel: &dyn Kernel,
    threads: usize,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
) -> Observed {
    let cfg = zoo_config();
    let obs = Obs::new();
    let mut cluster = Cluster::new(cfg.clone(), params(threads));
    cluster.attach_obs(&obs, "equivalence");
    cluster.enable_timeseries(256);
    if let Some(plan) = plan {
        cluster.inject_faults(plan).unwrap();
    }
    if let Some(threshold) = watchdog {
        cluster.set_watchdog(threshold);
    }
    let cycles = kernel
        .run(&mut cluster, 10_000_000)
        .unwrap_or_else(|e| panic!("{} at {threads} threads: {e}", kernel.name()));
    let stats = cluster.stats();
    let attribution = stats
        .attribution(cfg.cores_per_tile(), cfg.banks_per_tile())
        .to_json()
        .to_pretty();
    Observed {
        cycles,
        digest: stats.digest(),
        attribution,
        timeseries: obs.series.to_json().to_pretty(),
        fault_report: cluster.fault_report().map(|r| r.to_json().to_pretty()),
        stats,
    }
}

fn zoo() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Axpy::new(1024, 3)),
        Box::new(DotProduct::new(1024)),
        Box::new(ComputePhase::new(32)),
        Box::new(Transpose::new(64)),
    ]
}

#[test]
fn every_zoo_kernel_is_bit_identical_at_every_thread_count() {
    for kernel in zoo() {
        let reference = observe(kernel.as_ref(), 1, None, None);
        assert!(reference.cycles > 0, "{}", kernel.name());
        for threads in THREAD_COUNTS {
            let candidate = observe(kernel.as_ref(), threads, None, None);
            assert_eq!(
                reference,
                candidate,
                "{} diverged at {threads} threads",
                kernel.name()
            );
        }
    }
}

#[test]
fn seed42_fault_injected_run_is_bit_identical_at_every_thread_count() {
    // A rate high enough that retries, ECC corrections, and link
    // degradation all actually fire on this small cluster.
    let fault_cfg = FaultConfig::new(FAULT_SEED, 1e-4).with_horizon(50_000);
    let plan = FaultPlan::generate(&fault_cfg, &zoo_config());
    let kernel = ComputePhase::new(32);
    let reference = observe(&kernel, 1, Some(&plan), Some(2_000_000));
    let report = reference
        .fault_report
        .as_deref()
        .expect("a fault-injected run carries a report");
    assert!(
        report.contains("\"injected\""),
        "report should summarize injections: {report}"
    );
    for threads in THREAD_COUNTS {
        let candidate = observe(&kernel, threads, Some(&plan), Some(2_000_000));
        assert_eq!(
            reference, candidate,
            "degraded run diverged at {threads} threads"
        );
    }
}

#[test]
fn watchdog_deadlock_raises_the_identical_error_at_every_thread_count() {
    // Core 0 waits forever on a load swallowed by a black-holing dead
    // link; the watchdog must fire on the same cycle with the same
    // per-core diagnostics regardless of engine.
    let run_once = |threads: usize| -> SimError {
        let cfg = zoo_config();
        let remote = {
            let probe = Cluster::new(cfg.clone(), params(1));
            probe.storage().map().seq_addr(TileId(1), 0)
        };
        let mut cluster = Cluster::new(cfg, params(threads));
        let mut plan = FaultPlan::new(5).with_dead_link_policy(DeadLinkPolicy::BlackHole);
        plan.push(FaultEvent::LinkDead { tile: TileId(1) });
        cluster.inject_faults(&plan).unwrap();
        cluster.set_watchdog(64);
        cluster.load_program(
            Program::assemble(&format!(
                r#"
                    csrr t1, mhartid
                    bnez t1, done
                    li   t0, {remote}
                    lw   a0, 0(t0)
                    add  a1, a0, a0
                done:
                    wfi
                "#
            ))
            .unwrap(),
        );
        cluster.preload_icaches();
        cluster.run(100_000).unwrap_err()
    };
    let reference = run_once(1);
    let SimError::Deadlock { diagnostics, .. } = &reference else {
        panic!("expected a deadlock, got {reference}");
    };
    assert_eq!(diagnostics.len(), 16);
    assert_eq!(diagnostics[0].condition(), "waiting-on-memory");
    for threads in THREAD_COUNTS {
        assert_eq!(
            reference,
            run_once(threads),
            "deadlock error diverged at {threads} threads"
        );
    }
}

/// Removes the `perf` section (live wall-clock throughput, never
/// identical between two runs) from a benchmark summary.
fn strip_perf(doc: &Json) -> Json {
    match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(key, _)| key != "perf")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

#[test]
fn bench_summary_is_bit_identical_across_engines() {
    // `bench_summary()` builds its clusters through `SimParams::default`,
    // which reads the process-wide default thread count — the same path
    // `repro --threads N` uses. Every other test in this binary sets
    // `SimParams::threads` explicitly, so flipping the global here is
    // safe even under the parallel test runner.
    mempool_sim::set_default_threads(1);
    let sequential = strip_perf(&mempool_bench::bench_summary()).to_pretty();
    mempool_sim::set_default_threads(4);
    let parallel = strip_perf(&mempool_bench::bench_summary()).to_pretty();
    mempool_sim::set_default_threads(1);
    assert_eq!(
        sequential, parallel,
        "the pinned summary must not depend on the engine"
    );
}
