//! Validation of the analytic phase model against end-to-end simulation.
//!
//! Figure 6 rests on the paper's methodology of measuring compute phases
//! and accumulating them analytically. That is only sound if the analytic
//! model actually predicts end-to-end runs. Here we run the full blocked
//! matmul (DMA + compute, every phase simulated) at several sizes and
//! bandwidths and require the model — parameterized by constants measured
//! on the *same* simulator — to predict the totals within a tight margin.

use mempool_3d::mempool_arch::ClusterConfig;
use mempool_3d::mempool_kernels::matmul::{BlockedMatmul, PhaseModel};
use mempool_3d::mempool_kernels::measure;
use mempool_3d::mempool_sim::{Cluster, SimParams};

fn sim_config() -> ClusterConfig {
    ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(256)
        .build()
        .expect("valid config")
}

/// Builds the model with constants measured on the 16-core instance,
/// retargeted at a given problem size.
fn measured_model(m: u64) -> PhaseModel {
    let constants = measure::measure_constants().expect("measurement runs");
    let mut model = constants.phase_model(m, 16);
    // The 16-core DMA path charges the off-chip latency per transfer; the
    // analytic model idealizes it. Keep the model pure and account for it
    // in the tolerance instead.
    model.m = m;
    model
}

/// Predicted total for the simulator's orchestration: per k-step DMA of
/// two tiles plus per-output-tile zeroing and store, including the
/// off-chip latency the pure model idealizes away.
fn predict(model: &PhaseModel, m: u64, t: u64, bw: u32, latency: u64) -> f64 {
    let steps = m / t;
    let per_k =
        model.memory_phase_cycles(t, bw) + 2.0 * latency as f64 + model.compute_phase_cycles(t);
    let per_tile = steps as f64 * per_k + model.store_cycles(t, bw) + latency as f64;
    (steps * steps) as f64 * per_tile
}

#[test]
fn analytic_model_predicts_simulated_totals() {
    let model = measured_model(96);
    let latency = SimParams::default().offchip_latency as u64;
    for bw in [4u32, 16, 64] {
        let mm = BlockedMatmul::new(96, 32);
        let mut cluster = Cluster::new(
            sim_config(),
            SimParams::default().with_offchip_bandwidth(bw),
        );
        mm.setup(&mut cluster).expect("setup");
        let simulated = mm.run(&mut cluster).expect("run").total() as f64;
        let predicted = predict(&model, 96, 32, bw, latency);
        let error = (simulated - predicted).abs() / simulated;
        assert!(
            error < 0.12,
            "at {bw} B/cycle: simulated {simulated:.0} vs predicted {predicted:.0} ({:.1} % off)",
            error * 100.0
        );
    }
}

#[test]
fn model_error_is_stable_across_problem_sizes() {
    let latency = SimParams::default().offchip_latency as u64;
    for (m, t) in [(64u32, 32u32), (96, 32)] {
        let model = measured_model(m as u64);
        let mm = BlockedMatmul::new(m, t);
        let mut cluster = Cluster::new(sim_config(), SimParams::default());
        mm.setup(&mut cluster).expect("setup");
        let simulated = mm.run(&mut cluster).expect("run").total() as f64;
        let predicted = predict(&model, m as u64, t as u64, 16, latency);
        let error = (simulated - predicted).abs() / simulated;
        assert!(
            error < 0.12,
            "{m}x{m}/t{t}: simulated {simulated:.0} vs predicted {predicted:.0} ({:.1} % off)",
            error * 100.0
        );
    }
}

#[test]
fn bandwidth_sensitivity_matches_between_model_and_simulation() {
    // The *ratio* between slow and fast off-chip memory — the quantity
    // Figure 6 plots — must agree even more tightly than the absolutes.
    let model = measured_model(96);
    let latency = SimParams::default().offchip_latency as u64;
    let run = |bw: u32| {
        let mm = BlockedMatmul::new(96, 32);
        let mut cluster = Cluster::new(
            sim_config(),
            SimParams::default().with_offchip_bandwidth(bw),
        );
        mm.setup(&mut cluster).expect("setup");
        mm.run(&mut cluster).expect("run").total() as f64
    };
    let sim_ratio = run(4) / run(64);
    let model_ratio = predict(&model, 96, 32, 4, latency) / predict(&model, 96, 32, 64, latency);
    assert!(
        (sim_ratio - model_ratio).abs() / sim_ratio < 0.06,
        "bandwidth-sensitivity ratios diverge: sim {sim_ratio:.3} vs model {model_ratio:.3}"
    );
}
