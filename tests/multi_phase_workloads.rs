//! Integration tests spanning the kernels, simulator, and architecture:
//! multi-phase workloads with DMA, multi-group clusters, and bandwidth
//! sensitivity measured end to end.

use mempool_3d::mempool_arch::ClusterConfig;
use mempool_3d::mempool_kernels::matmul::BlockedMatmul;
use mempool_3d::mempool_kernels::Kernel;
use mempool_3d::mempool_kernels::{axpy::Axpy, conv2d::Conv2d, dotprod::DotProduct};
use mempool_3d::mempool_sim::{Cluster, SimParams};

fn cluster_16(bandwidth: u32) -> Cluster {
    let cfg = ClusterConfig::builder()
        .groups(1)
        .tiles_per_group(4)
        .cores_per_tile(4)
        .banks_per_tile(16)
        .bank_words(256)
        .build()
        .expect("valid config");
    Cluster::new(cfg, SimParams::default().with_offchip_bandwidth(bandwidth))
}

#[test]
fn blocked_matmul_verifies_across_bandwidths() {
    let mm = BlockedMatmul::new(64, 32);
    let mut totals = Vec::new();
    for bw in [4u32, 16, 64] {
        let mut cluster = cluster_16(bw);
        mm.setup(&mut cluster).expect("setup");
        let cycles = mm.run(&mut cluster).expect("run");
        mm.verify(&cluster).expect("verify");
        totals.push((bw, cycles.total()));
    }
    // More bandwidth, fewer total cycles — strictly.
    assert!(
        totals[0].1 > totals[1].1 && totals[1].1 > totals[2].1,
        "{totals:?}"
    );
}

#[test]
fn memory_phase_share_shrinks_with_bandwidth() {
    // The paper's Figure 6 intuition, measured end to end: the memory
    // phases dominate at 4 B/cycle and nearly vanish at 64 B/cycle.
    let mm = BlockedMatmul::new(64, 32);
    let mut shares = Vec::new();
    for bw in [4u32, 64] {
        let mut cluster = cluster_16(bw);
        mm.setup(&mut cluster).expect("setup");
        let cycles = mm.run(&mut cluster).expect("run");
        shares.push(cycles.memory as f64 / cycles.total() as f64);
    }
    assert!(shares[0] > 2.0 * shares[1], "memory share {shares:?}");
}

#[test]
fn kernels_verify_on_a_two_group_cluster() {
    // Cross-group traffic changes timing but never results.
    let cfg = ClusterConfig::builder()
        .groups(2)
        .tiles_per_group(4)
        .cores_per_tile(2)
        .banks_per_tile(16)
        .bank_words(256)
        .build()
        .expect("valid config");
    let mut cluster = Cluster::new(cfg.clone(), SimParams::default());
    Axpy::new(1024, 9)
        .run(&mut cluster, 50_000_000)
        .expect("axpy");

    let mut cluster = Cluster::new(cfg.clone(), SimParams::default());
    DotProduct::new(512)
        .run(&mut cluster, 50_000_000)
        .expect("dotprod");

    let mut cluster = Cluster::new(cfg, SimParams::default());
    Conv2d::new(18, 18, [1, 0, 1, 0, 1, 0, 1, 0, 1])
        .run(&mut cluster, 50_000_000)
        .expect("conv2d");
}

#[test]
fn bigger_tiles_amortize_phase_overheads() {
    // At fixed bandwidth, t = 32 tiles beat t = 16 tiles on the same
    // product (more reuse, fewer phases) — the architectural mechanism
    // behind the whole paper.
    let mut small_tiles = cluster_16(4);
    let mm16 = BlockedMatmul::new(64, 16);
    mm16.setup(&mut small_tiles).expect("setup");
    let small = mm16.run(&mut small_tiles).expect("run").total();

    let mut large_tiles = cluster_16(4);
    let mm32 = BlockedMatmul::new(64, 32);
    mm32.setup(&mut large_tiles).expect("setup");
    let large = mm32.run(&mut large_tiles).expect("run").total();

    assert!(
        large < small,
        "t=32 ({large} cycles) must beat t=16 ({small} cycles) at 4 B/cycle"
    );
}

#[test]
fn simulator_statistics_are_conserved() {
    // Retired instructions and access counts must be consistent across
    // the stats aggregation.
    let mut cluster = cluster_16(16);
    Axpy::new(1024, 3)
        .run(&mut cluster, 50_000_000)
        .expect("axpy");
    let stats = cluster.stats();
    let per_core_sum: u64 = stats.cores.iter().map(|c| c.retired).sum();
    assert_eq!(per_core_sum, stats.total_retired());
    let accesses: u64 = stats.accesses_by_class().iter().sum();
    let served: u64 = stats.banks.iter().map(|b| b.served).sum();
    assert_eq!(
        accesses, served,
        "every SPM access must be served exactly once"
    );
}
